open Wafl_sim
open Wafl_fs
module Sched = Wafl_waffinity.Scheduler
module Aff = Wafl_waffinity.Affinity
module Isolation = Wafl_waffinity.Isolation
module Geometry = Wafl_storage.Geometry

type config = {
  parallel : bool;
  chunk : int;
  ranges : int;
  vol_buckets_per_cycle : int;
  stage_capacity : int;
}

let default_config =
  { parallel = true; chunk = 64; ranges = 8; vol_buckets_per_cycle = 8; stage_capacity = 64 }

type rg_state = {
  rg : int;
  drives : (int * int) list; (* (drive index, base vbn) *)
  mutable aa : int;
  mutable next_dbn : int; (* start of the next chunk within the AA *)
  mutable returned : int; (* buckets of the current cycle committed so far *)
  mutable refills_left : int;
  mutable filled : (int * int array) list; (* (drive, vbns) awaiting collective insertion *)
  mutable tetris : Tetris.t;
}

type vol_state = {
  vol : Volume.t;
  cache : Bucket.t Sync.Channel.t;
  mutable region : int;
  mutable next_bit : int; (* absolute vvbn cursor *)
}

type t = {
  eng : Engine.t;
  cost : Cost.t;
  sched : Sched.t;
  agg : Aggregate.t;
  cfg : config;
  obs : Wafl_obs.Trace.t;
  agg_id : int;
  phys_cache : Bucket.t Sync.Channel.t;
  rgs : rg_state array;
  vols : (int, vol_state) Hashtbl.t;
  (* statistics *)
  mutable n_filled : int;
  mutable n_committed : int;
  mutable n_allocated : int;
  mutable n_freed : int;
  mutable n_touched : int;
  mutable n_messages : int;
  mutable pending_commits : int;
  commit_idle : Sync.Waitq.t;
}

let config t = t.cfg
let aggregate t = t.agg
let scheduler t = t.sched

(* --- affinity selection ------------------------------------------------ *)

let phys_affinity t ~sample_vbn =
  if t.cfg.parallel then
    Aff.Agg_range (t.agg_id, sample_vbn / Layout.bits_per_map_block mod t.cfg.ranges)
  else Aff.Aggregate_vbn t.agg_id

(* In serialized mode every infrastructure message — aggregate and volume
   side alike — shares the single Aggregate_vbn affinity instance, which
   is what "single-threaded write allocation infrastructure" means in the
   paper's instrumented kernel. *)
let virt_affinity t ~vol ~sample_vvbn =
  if t.cfg.parallel then
    Aff.Vol_range (t.agg_id, vol, sample_vvbn / Layout.bits_per_map_block mod t.cfg.ranges)
  else Aff.Aggregate_vbn t.agg_id

let post t ~affinity body =
  t.n_messages <- t.n_messages + 1;
  Sched.post t.sched ~affinity ~label:"infra" body

(* Commit-type messages are tracked so a CP can wait for every pending
   allocation/free to reach the metafiles before serializing them.  The
   pending counter is an atomic in a real kernel; the paired probes also
   carry the release/acquire edges a quiescer relies on. *)
let post_commit t ~affinity body =
  if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"infra.pending_commits";
  t.pending_commits <- t.pending_commits + 1;
  post t ~affinity (fun () ->
      body ();
      t.pending_commits <- t.pending_commits - 1;
      if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"infra.pending_commits";
      if t.pending_commits = 0 then ignore (Sync.Waitq.wake_all t.commit_idle))

let quiesce_commits t =
  while t.pending_commits > 0 do
    Sync.Waitq.wait t.commit_idle
  done;
  (* Acquire every committed message's history before the caller reads
     the metafiles those messages wrote. *)
  if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"infra.pending_commits"

(* --- cost helpers ------------------------------------------------------ *)

(* Distinct metafile blocks covered by a VBN list, plus its length, in
   one pass.  Every caller passes an ascending list already — buckets
   consume their VBN array front-to-back and stage drains are sorted —
   so the sort is normally skipped; the run-count over a sorted list is
   the distinct-block count either way. *)
let rec sorted_from prev = function
  | [] -> true
  | v :: rest -> prev <= v && sorted_from v rest

let blocks_and_len vbns =
  let vbns =
    match vbns with
    | [] -> vbns
    | v :: rest -> if sorted_from v rest then vbns else List.sort Int.compare vbns
  in
  let rec go acc len prev = function
    | [] -> (acc, len)
    | v :: rest ->
        let b = v / Layout.bits_per_map_block in
        if b = prev then go acc (len + 1) prev rest else go (acc + 1) (len + 1) b rest
  in
  go 0 0 (-1) vbns

(* Charges the per-block and per-bit update costs; returns the list
   length so callers need not re-walk the list to count it. *)
let charge_bit_updates t vbns =
  let blocks, len = blocks_and_len vbns in
  t.n_touched <- t.n_touched + blocks;
  Engine.consume
    ((float_of_int blocks *. t.cost.Cost.metafile_block_touch)
    +. (float_of_int len *. t.cost.Cost.bitmap_bit_update));
  len

(* Collect allocatable VBNs in [lo, hi] and charge scan cost. *)
let scan_range t map ~lo ~hi ~allocatable =
  let before = Bitmap_file.words_scanned map in
  let rec go acc pos =
    if pos > hi then acc
    else
      match Bitmap_file.find_free map ~lo ~hi ~start:pos with
      | None -> acc
      | Some v -> if allocatable v then go (v :: acc) (v + 1) else go acc (v + 1)
  in
  let found = List.rev (go [] lo) in
  let scanned = Bitmap_file.words_scanned map - before in
  Engine.consume (float_of_int scanned *. t.cost.Cost.bitmap_scan_word);
  found

(* --- physical bucket cycle (per RAID group) ---------------------------- *)

let rg_aa_exhausted t st =
  st.next_dbn + t.cfg.chunk - 1 > snd (Geometry.aa_dbn_range (Aggregate.geometry t.agg) ~aa:st.aa)

let advance_rg_cursor t st =
  if rg_aa_exhausted t st then begin
    let aa =
      match Aggregate.select_aa t.agg ~rg:st.rg ~exclude:[ st.aa ] with
      | Some aa -> aa
      | None -> st.aa (* every other AA is worse; wrap within the current one *)
    in
    st.aa <- aa;
    st.next_dbn <- fst (Geometry.aa_dbn_range (Aggregate.geometry t.agg) ~aa)
  end

(* Refill one drive's bucket for the current cycle; the last refill of the
   cycle builds the new tetris and collectively inserts all buckets. *)
let refill_drive t st ~drive ~base ~lo_dbn =
  let lo = base + lo_dbn in
  let hi = base + lo_dbn + t.cfg.chunk - 1 in
  Engine.consume (t.cost.Cost.bucket_fixed +. t.cost.Cost.summary_update);
  if Engine.sanitizing t.eng then
    for b = lo / Layout.bits_per_map_block to hi / Layout.bits_per_map_block do
      Engine.probe_locked t.eng ~shared:(Aggregate.agg_map_domain ~index:b) Race.Read
    done;
  let vbns =
    scan_range t (Aggregate.agg_map t.agg) ~lo ~hi ~allocatable:(fun v ->
        Aggregate.pvbn_allocatable t.agg v)
  in
  t.n_filled <- t.n_filled + 1;
  (* Per-cycle bookkeeping is shared across the group's Range affinities;
     its mutations are chained (last commit -> refills -> commits), which
     the paired probes express as release/acquire edges. *)
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng ~shared:(Printf.sprintf "infra.rg%d.cycle" st.rg);
  st.filled <- (drive, Array.of_list vbns) :: st.filled;
  st.refills_left <- st.refills_left - 1;
  if st.refills_left = 0 then begin
    let tetris =
      Tetris.create ~obs:t.obs t.eng ~cost:t.cost
        ~raid:(Aggregate.raid t.agg ~rg:st.rg)
        ~expected_buckets:(List.length st.filled)
    in
    st.tetris <- tetris;
    let buckets =
      List.rev_map
        (fun (drive, vbns) ->
          Bucket.make ~target:(Bucket.Phys { rg = st.rg; drive }) ~tetris ~vbns ())
        st.filled
    in
    st.filled <- [];
    (* Synchronized insertion: every drive's bucket enters the cache
       together (§IV-D, objective 3). *)
    List.iter (fun b -> Sync.Channel.send t.phys_cache b) buckets
  end

let start_rg_cycle t st =
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng ~shared:(Printf.sprintf "infra.rg%d.cycle" st.rg);
  advance_rg_cursor t st;
  let lo_dbn = st.next_dbn in
  st.next_dbn <- st.next_dbn + t.cfg.chunk;
  st.returned <- 0;
  st.refills_left <- List.length st.drives;
  st.filled <- [];
  List.iter
    (fun (drive, base) ->
      post t ~affinity:(phys_affinity t ~sample_vbn:(base + lo_dbn)) (fun () ->
          refill_drive t st ~drive ~base ~lo_dbn))
    st.drives

let commit_phys_bucket t st bucket =
  Engine.consume (t.cost.Cost.bucket_fixed +. t.cost.Cost.summary_update);
  if not (Bucket.is_committed bucket) then begin
    let used = Bucket.consumed bucket in
    let n = charge_bit_updates t used in
    List.iter (fun v -> Aggregate.commit_alloc_pvbn t.agg v) used;
    t.n_allocated <- t.n_allocated + n
  end
  else t.n_allocated <- t.n_allocated + Bucket.consumed_count bucket;
  t.n_committed <- t.n_committed + 1;
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng ~shared:(Printf.sprintf "infra.rg%d.cycle" st.rg);
  st.returned <- st.returned + 1;
  if st.returned = List.length st.drives then start_rg_cycle t st

(* --- virtual bucket handling (per volume) ------------------------------ *)

let vol_region_exhausted t vs =
  vs.next_bit + t.cfg.chunk - 1
  > min (Volume.vvbn_space vs.vol - 1) (((vs.region + 1) * Aggregate.vvbn_region_bits) - 1)

let advance_vol_cursor t vs =
  if vol_region_exhausted t vs then begin
    let region =
      match Aggregate.select_vvbn_region t.agg ~vol:vs.vol ~exclude:[ vs.region ] with
      | Some r -> r
      | None -> vs.region
    in
    vs.region <- region;
    vs.next_bit <- region * Aggregate.vvbn_region_bits
  end

(* Virtual buckets refill independently: volumes need no per-drive
   fairness, and independent refills keep the per-volume cache non-empty
   even while some buckets are parked with cleaner threads. *)
let scan_virt_chunk t vs ~lo ~hi =
  Engine.consume (t.cost.Cost.bucket_fixed +. t.cost.Cost.summary_update);
  if Engine.sanitizing t.eng then begin
    let vol = Volume.id vs.vol in
    for b = lo / Layout.bits_per_map_block to hi / Layout.bits_per_map_block do
      Engine.probe_locked t.eng ~shared:(Aggregate.vol_map_domain ~vol ~index:b) Race.Read
    done
  end;
  let vbns =
    scan_range t (Volume.vol_map vs.vol) ~lo ~hi ~allocatable:(fun v ->
        Aggregate.vvbn_allocatable t.agg ~vol:vs.vol v)
  in
  t.n_filled <- t.n_filled + 1;
  Sync.Channel.send vs.cache
    (Bucket.make ~target:(Bucket.Virt { vol = Volume.id vs.vol }) ~vbns:(Array.of_list vbns) ())

(* The cursor is cheap shared state (an atomic word in a real kernel),
   but the map scan it steers must run under the Range affinity that owns
   the map block being read.  [under] is the affinity the calling message
   was posted to: when the cursor stays inside that Range's block — the
   common case — the scan runs inline; when a region jump or chunk
   boundary moves it into another Range, the scan is reposted under the
   owning affinity instead of being run from the wrong one. *)
let refill_virt t vs ~under =
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng ~shared:(Printf.sprintf "vol/%d.cursor" (Volume.id vs.vol));
  advance_vol_cursor t vs;
  let lo = vs.next_bit in
  let hi = min (Volume.vvbn_space vs.vol - 1) (lo + t.cfg.chunk - 1) in
  vs.next_bit <- vs.next_bit + t.cfg.chunk;
  let want = virt_affinity t ~vol:(Volume.id vs.vol) ~sample_vvbn:lo in
  if want = under then scan_virt_chunk t vs ~lo ~hi
  else post t ~affinity:want (fun () -> scan_virt_chunk t vs ~lo ~hi)

let commit_virt_bucket t vs ~under bucket =
  Engine.consume (t.cost.Cost.bucket_fixed +. t.cost.Cost.summary_update);
  if not (Bucket.is_committed bucket) then begin
    let used = Bucket.consumed bucket in
    let n = charge_bit_updates t used in
    List.iter (fun v -> Aggregate.commit_alloc_vvbn t.agg ~vol:vs.vol v) used;
    t.n_allocated <- t.n_allocated + n
  end
  else t.n_allocated <- t.n_allocated + Bucket.consumed_count bucket;
  t.n_committed <- t.n_committed + 1;
  refill_virt t vs ~under

(* --- public operations -------------------------------------------------- *)

let vol_state t vol =
  match Hashtbl.find_opt t.vols (Volume.id vol) with
  | Some vs -> vs
  | None -> invalid_arg (Printf.sprintf "Infra: volume %d not registered" (Volume.id vol))

let get_phys t =
  Engine.consume t.cost.Cost.lock_acquire;
  Sync.Channel.recv t.phys_cache

let get_virt t vol =
  Engine.consume t.cost.Cost.lock_acquire;
  Sync.Channel.recv (vol_state t vol).cache

let put t bucket =
  match Bucket.target bucket with
  | Bucket.Phys { rg; drive = _ } ->
      let st = t.rgs.(rg) in
      let sample = match Bucket.consumed bucket with v :: _ -> v | [] -> snd (List.hd st.drives) in
      post_commit t ~affinity:(phys_affinity t ~sample_vbn:sample) (fun () ->
          commit_phys_bucket t st bucket)
  | Bucket.Virt { vol } ->
      let vs =
        match Hashtbl.find_opt t.vols vol with
        | Some vs -> vs
        | None -> invalid_arg "Infra.put: unknown volume"
      in
      let sample = match Bucket.consumed bucket with v :: _ -> v | [] -> 0 in
      let affinity = virt_affinity t ~vol ~sample_vvbn:sample in
      post_commit t ~affinity (fun () -> commit_virt_bucket t vs ~under:affinity bucket)

(* Split a free batch by Range affinity so independent ranges commit in
   parallel; within one message, charge per distinct metafile block. *)
let group_by_range t vbns =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let r = v / Layout.bits_per_map_block mod t.cfg.ranges in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
      Hashtbl.replace tbl r (v :: cur))
    vbns;
  (* lint-ok: sorted before use. *)
  Hashtbl.fold (fun r vs acc -> (r, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* A loose-accounting token is staged by its owning cleaner while commit
   messages flush it — concurrent by design, with atomic deltas in a real
   kernel.  Probing it as atomic both documents that and gives the
   detector the edge from the cleaner's staged history into the flush. *)
let token_probe t ~owner =
  match owner with
  | Some idx when Engine.sanitizing t.eng ->
      Engine.probe_atomic t.eng ~shared:(Printf.sprintf "cleaner/%d.token" idx)
  | _ -> ()

let commit_frees ?owner t ~target ~vbns ~token =
  if vbns <> [] then begin
    let flush_token () =
      token_probe t ~owner;
      let updates = Counters.flush (Aggregate.counters t.agg) token in
      Engine.consume (float_of_int updates *. t.cost.Cost.lock_acquire)
    in
    let groups =
      if t.cfg.parallel then group_by_range t vbns
      else [ (0, vbns) ] (* serialized infrastructure: one message *)
    in
    let first = ref true in
    List.iter
      (fun (_, group) ->
        let apply_token = !first in
        first := false;
        let affinity, commit_one =
          match target with
          | Stage.Phys ->
              ( phys_affinity t ~sample_vbn:(List.hd group),
                fun v -> Aggregate.commit_free_pvbn t.agg v )
          | Stage.Virt { vol } ->
              let v = Aggregate.volume_exn t.agg vol in
              ( virt_affinity t ~vol ~sample_vvbn:(List.hd group),
                fun vvbn -> Aggregate.commit_free_vvbn t.agg ~vol:v vvbn )
        in
        post_commit t ~affinity (fun () ->
            Engine.consume t.cost.Cost.stage_commit_fixed;
            let n = charge_bit_updates t group in
            List.iter commit_one group;
            t.n_freed <- t.n_freed + n;
            if apply_token then flush_token ()))
      groups
  end

(* Affinity under which a metafile block's serialization/write-out runs
   during a CP — the "most expensive infrastructure operations ... run in
   these Range affinities" optimization of §IV-B2. *)
let meta_affinity t (ref_ : Aggregate.meta_ref) =
  if not t.cfg.parallel then Aff.Aggregate_vbn t.agg_id
  else
    match ref_ with
    | Aggregate.Agg_map_chunk { index } -> Aff.Agg_range (t.agg_id, index mod t.cfg.ranges)
    | Aggregate.Vol_map_chunk { vol; index }
    | Aggregate.Container_chunk { vol; index }
    | Aggregate.Inode_chunk { vol; index } ->
        Aff.Vol_range (t.agg_id, vol, index mod t.cfg.ranges)
    | Aggregate.Bmap_block { vol; file; index } ->
        Aff.Vol_range (t.agg_id, vol, (file + index) mod t.cfg.ranges)

let post_meta t ~affinity body = post t ~affinity body

let flush_token ?owner t token =
  post_commit t ~affinity:(phys_affinity t ~sample_vbn:0) (fun () ->
      token_probe t ~owner;
      let updates = Counters.flush (Aggregate.counters t.agg) token in
      Engine.consume (float_of_int updates *. t.cost.Cost.lock_acquire))

let phys_cache_length t = Sync.Channel.length t.phys_cache
let virt_cache_length t vol = Sync.Channel.length (vol_state t vol).cache

(* --- construction ------------------------------------------------------- *)

let register_vol_state t vol =
  if not (Hashtbl.mem t.vols (Volume.id vol)) then begin
    let vs =
      {
        vol;
        cache = Sync.Channel.create (Aggregate.engine t.agg);
        region =
          (match Aggregate.select_vvbn_region t.agg ~vol ~exclude:[] with
          | Some r -> r
          | None -> 0);
        next_bit = 0;
      }
    in
    vs.next_bit <- vs.region * Aggregate.vvbn_region_bits;
    Hashtbl.add t.vols (Volume.id vol) vs;
    (match Sched.isolation t.sched with
    | Some iso ->
        let vid = Volume.id vol in
        let nblocks =
          (Volume.vvbn_space vol + Layout.bits_per_map_block - 1) / Layout.bits_per_map_block
        in
        for b = 0 to nblocks - 1 do
          (* The owner mirrors [virt_affinity]: in serialized mode the
             whole infrastructure runs under Aggregate_vbn, so that is
             the affinity that guards the block. *)
          Isolation.register_owner iso
            ~shared:(Aggregate.vol_map_domain ~vol:vid ~index:b)
            (virt_affinity t ~vol:vid ~sample_vvbn:(b * Layout.bits_per_map_block))
        done
    | None -> ());
    for _ = 1 to t.cfg.vol_buckets_per_cycle do
      let affinity = virt_affinity t ~vol:(Volume.id vol) ~sample_vvbn:vs.next_bit in
      post t ~affinity (fun () -> refill_virt t vs ~under:affinity)
    done
  end

let register_volume t vol = register_vol_state t vol

let create ?(obs = Wafl_obs.Trace.disabled) sched agg cfg =
  if cfg.chunk <= 0 || cfg.ranges <= 0 || cfg.vol_buckets_per_cycle <= 0 then
    invalid_arg "Infra.create: bad configuration";
  let eng = Aggregate.engine agg in
  let geom = Aggregate.geometry agg in
  let rgs =
    Array.init (Wafl_storage.Geometry.raid_group_count geom) (fun rg ->
        {
          rg;
          drives = Wafl_storage.Geometry.drives_of_rg geom ~rg;
          aa = 0;
          next_dbn = 0;
          returned = 0;
          refills_left = 0;
          filled = [];
          tetris =
            Tetris.create ~obs eng ~cost:(Aggregate.cost agg) ~raid:(Aggregate.raid agg ~rg)
              ~expected_buckets:0;
        })
  in
  let t =
    {
      eng;
      cost = Aggregate.cost agg;
      sched;
      agg;
      cfg;
      obs;
      agg_id = 0;
      phys_cache = Sync.Channel.create eng;
      rgs;
      vols = Hashtbl.create 8;
      n_filled = 0;
      n_committed = 0;
      n_allocated = 0;
      n_freed = 0;
      n_touched = 0;
      n_messages = 0;
      pending_commits = 0;
      commit_idle = Sync.Waitq.create eng;
    }
  in
  (match Sched.isolation sched with
  | Some iso ->
      let nblocks =
        (Wafl_storage.Geometry.total_data_blocks geom + Layout.bits_per_map_block - 1)
        / Layout.bits_per_map_block
      in
      for b = 0 to nblocks - 1 do
        Isolation.register_owner iso
          ~shared:(Aggregate.agg_map_domain ~index:b)
          (phys_affinity t ~sample_vbn:(b * Layout.bits_per_map_block))
      done
  | None -> ());
  Array.iter
    (fun st ->
      (match Aggregate.select_aa agg ~rg:st.rg ~exclude:[] with
      | Some aa ->
          st.aa <- aa;
          st.next_dbn <- fst (Wafl_storage.Geometry.aa_dbn_range geom ~aa)
      | None -> ());
      start_rg_cycle t st)
    t.rgs;
  List.iter (register_vol_state t) (Aggregate.volumes agg);
  t

let live_tetrises t = Array.to_list t.rgs |> List.map (fun st -> st.tetris)

let dump t out =
  Array.iter
    (fun st ->
      Printf.fprintf out "  rg %d: aa=%d next_dbn=%d returned=%d/%d refills_left=%d\n%!"
        st.rg st.aa st.next_dbn st.returned (List.length st.drives) st.refills_left)
    t.rgs;
  (* lint-ok: sorted before printing. *)
  Hashtbl.fold (fun vid vs acc -> (vid, vs) :: acc) t.vols []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (vid, vs) ->
         Printf.fprintf out "  vol %d: cache=%d region=%d next_bit=%d\n%!" vid
           (Sync.Channel.length vs.cache) vs.region vs.next_bit);
  Printf.fprintf out "  infra: physcache=%d pending_commits=%d messages=%d\n%!"
    (Sync.Channel.length t.phys_cache) t.pending_commits t.n_messages

let buckets_filled t = t.n_filled
let buckets_committed t = t.n_committed
let vbns_allocated t = t.n_allocated
let vbns_freed t = t.n_freed
let metafile_blocks_touched t = t.n_touched
let messages_posted t = t.n_messages
