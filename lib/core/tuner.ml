open Wafl_sim

type config = { interval : float; activate_above : float; deactivate_below : float }

let default_config = { interval = 50_000.0; activate_above = 0.35; deactivate_below = 0.15 }

type t = {
  pool : Cleaner_pool.t;
  cfg : config;
  mutable last_busy : float;
  mutable n_activations : int;
  mutable n_deactivations : int;
  mutable n_decisions : int;
}

let tick t =
  let busy = Cleaner_pool.utilization_busy t.pool in
  let delta = busy -. t.last_busy in
  t.last_busy <- busy;
  t.n_decisions <- t.n_decisions + 1;
  let active = Cleaner_pool.active t.pool in
  let util = delta /. (t.cfg.interval *. float_of_int active) in
  if util > t.cfg.activate_above && active < Cleaner_pool.max_threads t.pool then begin
    Cleaner_pool.set_active t.pool (active + 1);
    t.n_activations <- t.n_activations + 1
  end
  else if util < t.cfg.deactivate_below && active > 1 then begin
    Cleaner_pool.set_active t.pool (active - 1);
    t.n_deactivations <- t.n_deactivations + 1
  end

let create pool cfg =
  if cfg.interval <= 0.0 then invalid_arg "Tuner.create: bad interval";
  let t =
    { pool; cfg; last_busy = 0.0; n_activations = 0; n_deactivations = 0; n_decisions = 0 }
  in
  let eng = Cleaner_pool.engine pool in
  ignore
    (Engine.spawn eng ~label:"tuner" (fun () ->
         let rec loop () =
           Engine.sleep cfg.interval;
           (* decision counters are read back by the report while this
              fiber updates them *)
           Engine.probe_atomic eng ~shared:"tuner.state";
           tick t;
           loop ()
         in
         loop ()));
  t

let activations t = t.n_activations
let deactivations t = t.n_deactivations
let decisions t = t.n_decisions
