type target = Phys | Virt of { vol : int }

type t = { target : target; capacity : int; mutable items : int list; mutable len : int }

let create ~target ~capacity =
  if capacity <= 0 then invalid_arg "Stage.create: capacity must be positive";
  { target; capacity; items = []; len = 0 }

let target t = t.target
let capacity t = t.capacity
let length t = t.len
let is_empty t = t.len = 0

let add t vbn =
  t.items <- vbn :: t.items;
  t.len <- t.len + 1;
  if t.len >= t.capacity then `Full else `Ok

(* Stagers mostly add VBNs in ascending order, so [items] (a prepend
   list) is usually already descending: detect that and reverse instead
   of sorting. *)
let rec sorted_desc_from prev = function
  | [] -> true
  | v :: rest -> prev >= v && sorted_desc_from v rest

let drain t =
  let items =
    match t.items with
    | [] -> []
    | v :: rest ->
        if sorted_desc_from v rest then List.rev t.items
        else List.sort Int.compare t.items
  in
  t.items <- [];
  t.len <- 0;
  items
