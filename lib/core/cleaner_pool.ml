open Wafl_sim
open Wafl_fs

type segment = {
  vol : Volume.t;
  file : File.t;
  buffers : (int * int64) list;
  whole_inode : bool;
}

type work = segment list

type msg =
  | Work of {
      segments : work;
      posted_at : float;
      h : Wafl_obs.Causal.handoff; (* submitter's causal context *)
    }
  | Flushreq of (unit -> unit)

type cleaner = {
  idx : int;
  chan : msg Sync.Channel.t;
  mutable queued : int;
  mutable phys : Bucket.t option;
  mutable virt : (int * Bucket.t) option; (* at most one volume's bucket *)
  phys_stage : Stage.t;
  virt_stages : (int, Stage.t) Hashtbl.t;
  token : Counters.token;
  (* Cached token cells for the two per-buffer counters: skips the
     name-hash lookup on every cleaned buffer. *)
  c_freed : int ref;
  c_cleaned : int ref;
}

type t = {
  eng : Engine.t;
  cost : Cost.t;
  infra : Infra.t;
  obs : Wafl_obs.Trace.t;
  obs_on : bool; (* Trace.enabled obs, hoisted off the hot path *)
  causal_on : bool; (* Causal.enabled obs, hoisted likewise *)
  m_busy : Wafl_obs.Metrics.counter;
  m_work : Wafl_obs.Metrics.counter;
  g_active : Wafl_obs.Metrics.gauge;
  g_pending : Wafl_obs.Metrics.gauge;
  cleaners : cleaner array;
  mutable n_active : int;
  mutable pending_msgs : int;
  idle : Sync.Waitq.t;
  mutable n_buffers : int;
  mutable n_inodes : int;
  mutable n_messages : int;
  mutable n_get_waits : int;
  mutable busy : float;
}

(* All cleaner CPU goes through here so the dynamic tuner can read a
   cumulative busy figure that survives engine accounting resets. *)
let charge t d =
  t.busy <- t.busy +. d;
  Wafl_obs.Metrics.addf t.m_busy d;
  Engine.consume d

(* --- bucket acquisition ------------------------------------------------- *)

let rec take_virt ?(spin = 0) t c vol =
  if spin > 50_000 then
    failwith
      (Printf.sprintf "take_virt: livelock, vol %d cache=%d"
         (Volume.id vol)
         (Infra.virt_cache_length t.infra vol));
  match c.virt with
  | Some (vid, b) when vid = Volume.id vol -> (
      match Api.use_virt b with
      | Some v -> v
      | None ->
          Api.put t.infra b;
          c.virt <- None;
          take_virt ~spin:(spin + 1) t c vol)
  | Some (_, b) ->
      (* Switching volumes: return the old bucket (partially used buckets
         are legal; unused VBNs simply stay free). *)
      Api.put t.infra b;
      c.virt <- None;
      take_virt ~spin:(spin + 1) t c vol
  | None ->
      if Infra.virt_cache_length t.infra vol = 0 then t.n_get_waits <- t.n_get_waits + 1;
      charge t t.cost.Cost.lock_acquire;
      let b = Infra.get_virt t.infra vol in
      c.virt <- Some (Volume.id vol, b);
      take_virt ~spin:(spin + 1) t c vol

let rec take_phys ?(spin = 0) t c ~payload =
  if spin > 50_000 then
    failwith
      (Printf.sprintf "take_phys: livelock, cache=%d" (Infra.phys_cache_length t.infra));
  match c.phys with
  | Some b -> (
      match Api.use b ~payload with
      | Some v -> v
      | None ->
          Api.put t.infra b;
          c.phys <- None;
          take_phys ~spin:(spin + 1) t c ~payload)
  | None ->
      if Infra.phys_cache_length t.infra = 0 then t.n_get_waits <- t.n_get_waits + 1;
      charge t t.cost.Cost.lock_acquire;
      let b = Infra.get_phys t.infra in
      c.phys <- Some b;
      take_phys ~spin:(spin + 1) t c ~payload

(* --- free staging ------------------------------------------------------- *)

(* Stages are private to their cleaner thread — the probe is pure teeth:
   any touch from another fiber is a bug the detector must report. *)
let stage_probe t c =
  if Engine.sanitizing t.eng then
    Engine.probe t.eng ~shared:(Printf.sprintf "cleaner/%d.stage" c.idx) Race.Write

let token_probe t c =
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng ~shared:(Printf.sprintf "cleaner/%d.token" c.idx)

let stage_phys t c pvbn =
  charge t t.cost.Cost.stage_free;
  stage_probe t c;
  match Stage.add c.phys_stage pvbn with
  | `Ok -> ()
  | `Full ->
      Infra.commit_frees ~owner:c.idx t.infra ~target:Stage.Phys
        ~vbns:(Stage.drain c.phys_stage) ~token:c.token

let virt_stage t c vol =
  let vid = Volume.id vol in
  match Hashtbl.find_opt c.virt_stages vid with
  | Some s -> s
  | None ->
      let s =
        Stage.create
          ~target:(Stage.Virt { vol = vid })
          ~capacity:(Infra.config t.infra).Infra.stage_capacity
      in
      Hashtbl.add c.virt_stages vid s;
      s

let stage_virt t c vol vvbn =
  charge t t.cost.Cost.stage_free;
  stage_probe t c;
  let s = virt_stage t c vol in
  match Stage.add s vvbn with
  | `Ok -> ()
  | `Full ->
      Infra.commit_frees ~owner:c.idx t.infra
        ~target:(Stage.Virt { vol = Volume.id vol })
        ~vbns:(Stage.drain s) ~token:c.token

(* --- the cleaning loop -------------------------------------------------- *)

let clean_segment t c seg =
  if seg.whole_inode then charge t t.cost.Cost.clean_inode_overhead;
  let count = ref 0 in
  List.iter
    (fun (fbn, content) ->
      let vol = seg.vol and file = seg.file in
      let vvbn = take_virt t c vol in
      let payload =
        Layout.Data { vol = Volume.id vol; file = File.id file; fbn; content }
      in
      let pvbn = take_phys t c ~payload in
      let old_vvbn = File.set_vvbn file ~fbn ~vvbn in
      let prev = Volume.map_vvbn vol ~vvbn ~pvbn in
      if prev <> -1 then
        failwith
          (Printf.sprintf "cleaner: fresh vvbn %d of volume %d was already mapped to %d"
             vvbn (Volume.id vol) prev);
      if old_vvbn >= 0 then begin
        (* The overwrite frees the previous generation of this block, in
           both address spaces (§II-C). *)
        let old_pvbn = Volume.map_vvbn vol ~vvbn:old_vvbn ~pvbn:(-1) in
        if old_pvbn < 0 then
          failwith
            (Printf.sprintf "cleaner: stale vvbn %d of volume %d had no container entry"
               old_vvbn (Volume.id vol));
        stage_virt t c vol old_vvbn;
        stage_phys t c old_pvbn;
        token_probe t c;
        incr c.c_freed
      end;
      charge t t.cost.Cost.clean_buffer;
      token_probe t c;
      incr c.c_cleaned;
      t.n_buffers <- t.n_buffers + 1;
      incr count;
      if !count mod 64 = 0 then Engine.yield ())
    seg.buffers;
  if seg.whole_inode then t.n_inodes <- t.n_inodes + 1

let flush_cleaner t c =
  (match c.phys with
  | Some b ->
      Api.put t.infra b;
      c.phys <- None
  | None -> ());
  (match c.virt with
  | Some (_, b) ->
      Api.put t.infra b;
      c.virt <- None
  | None -> ());
  stage_probe t c;
  if not (Stage.is_empty c.phys_stage) then
    Infra.commit_frees ~owner:c.idx t.infra ~target:Stage.Phys
      ~vbns:(Stage.drain c.phys_stage) ~token:c.token;
  (* lint-ok: sorted before use. *)
  Hashtbl.fold (fun vid s acc -> (vid, s) :: acc) c.virt_stages []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (vid, s) ->
         if not (Stage.is_empty s) then
           Infra.commit_frees ~owner:c.idx t.infra ~target:(Stage.Virt { vol = vid })
             ~vbns:(Stage.drain s) ~token:c.token);
  Infra.flush_token ~owner:c.idx t.infra c.token

(* "Once the cleaner thread has either consumed all free VBNs in a bucket
   or run out of dirty buffers to clean, it returns the bucket" (§IV-A).
   Returning buckets when going idle is also what keeps the refill cycle
   live: a retained bucket would block its RAID group's collective
   reinsertion while this thread has nothing to clean. *)
let release_buckets t c =
  (match c.phys with
  | Some b ->
      Api.put t.infra b;
      c.phys <- None
  | None -> ());
  match c.virt with
  | Some (_, b) ->
      Api.put t.infra b;
      c.virt <- None
  | None -> ()

let cleaner_loop t c () =
  let rec loop () =
    match Sync.Channel.recv c.chan with
    | Work { segments; posted_at; h } ->
        let t0 = Engine.now t.eng in
        (* The cleaner picks up the work item: the submitter's causal
           context becomes this cleaner's context, so cleaning spans
           attribute to the CP (or message) that produced the work. *)
        Wafl_obs.Causal.restore t.obs ~kind:"clean" h;
        (* Per-message cost: dispatch plus waking the thread — the
           overhead batched inode cleaning amortizes (SV-C). *)
        charge t (t.cost.Cost.msg_dispatch +. t.cost.Cost.thread_wake);
        if t.obs_on then
          Wafl_obs.Trace.with_span t.obs ~cat:"cleaner" ~name:"clean work"
            ~args:[ ("segments", string_of_int (List.length segments)) ]
            ~num_args:(if t.causal_on then [ ("wait_us", t0 -. posted_at) ] else [])
            (fun () -> List.iter (clean_segment t c) segments)
        else List.iter (clean_segment t c) segments;
        (* Cleaner fibers are reused across unrelated work items: drop any
           leftover span/context so item A can never parent item B. *)
        if t.obs_on then Wafl_obs.Causal.fiber_reset t.obs;
        Wafl_obs.Metrics.incr t.m_work;
        if Sync.Channel.length c.chan = 0 then release_buckets t c;
        t.n_messages <- t.n_messages + 1;
        (* Queue-depth bookkeeping is shared with submitters (an atomic
           in a real kernel); the probe also publishes this message's
           cleaning history to wait_idle. *)
        Engine.probe_atomic t.eng ~shared:"cleaner_pool.state";
        c.queued <- c.queued - 1;
        t.pending_msgs <- t.pending_msgs - 1;
        Wafl_obs.Metrics.set t.g_pending (float_of_int t.pending_msgs);
        if t.pending_msgs = 0 then ignore (Sync.Waitq.wake_all t.idle);
        Engine.yield ();
        loop ()
    | Flushreq ack ->
        flush_cleaner t c;
        ack ();
        loop ()
  in
  loop ()

(* --- pool management ---------------------------------------------------- *)

let create ?(obs = Wafl_obs.Trace.disabled) infra ~max_threads ~initial_threads =
  if max_threads <= 0 then invalid_arg "Cleaner_pool.create: no threads";
  let initial = max 1 (min initial_threads max_threads) in
  let agg = Infra.aggregate infra in
  let eng = Aggregate.engine agg in
  let counters = Aggregate.counters agg in
  let m = Wafl_obs.Trace.metrics obs in
  let t =
    {
      eng;
      cost = Aggregate.cost agg;
      infra;
      obs;
      obs_on = Wafl_obs.Trace.enabled obs;
      causal_on = Wafl_obs.Causal.enabled obs;
      m_busy = Wafl_obs.Metrics.counter m "cleaner.busy_us";
      m_work = Wafl_obs.Metrics.counter m "cleaner.work_msgs";
      g_active = Wafl_obs.Metrics.gauge m "cleaner.active";
      g_pending = Wafl_obs.Metrics.gauge m "cleaner.pending_msgs";
      cleaners =
        Array.init max_threads (fun idx ->
            let token = Counters.token counters in
            {
              idx;
              chan = Sync.Channel.create eng;
              queued = 0;
              phys = None;
              virt = None;
              phys_stage =
                Stage.create ~target:Stage.Phys
                  ~capacity:(Infra.config infra).Infra.stage_capacity;
              virt_stages = Hashtbl.create 4;
              token;
              c_freed = Counters.token_cell token "cleaner_blocks_freed";
              c_cleaned = Counters.token_cell token "cleaner_buffers_cleaned";
            });
      n_active = initial;
      pending_msgs = 0;
      idle = Sync.Waitq.create eng;
      n_buffers = 0;
      n_inodes = 0;
      n_messages = 0;
      n_get_waits = 0;
      busy = 0.0;
    }
  in
  Wafl_obs.Metrics.set t.g_active (float_of_int initial);
  Array.iter
    (fun c -> ignore (Engine.spawn eng ~label:"cleaner" (cleaner_loop t c)))
    t.cleaners;
  t

let dump t out =
  Array.iter
    (fun c ->
      Printf.fprintf out "  cleaner %d: queued=%d phys=%s virt=%s\n%!" c.idx c.queued
        (match c.phys with
        | Some b -> Printf.sprintf "held(%d left)" (Bucket.remaining b)
        | None -> "-")
        (match c.virt with
        | Some (vid, b) -> Printf.sprintf "vol%d(%d left)" vid (Bucket.remaining b)
        | None -> "-"))
    t.cleaners;
  Printf.fprintf out "  pool: pending_msgs=%d active=%d\n%!" t.pending_msgs t.n_active

let engine t = t.eng
let max_threads t = Array.length t.cleaners
let active t = t.n_active

let set_active t n =
  let n = max 1 (min n (max_threads t)) in
  if n > t.n_active then
    (* Waking dormant threads has a cost (§V-B). *)
    Engine.consume (float_of_int (n - t.n_active) *. t.cost.Cost.thread_wake);
  t.n_active <- n;
  Wafl_obs.Metrics.set t.g_active (float_of_int n)

let submit t work =
  Engine.probe_atomic t.eng ~shared:"cleaner_pool.state";
  let best = ref t.cleaners.(0) in
  for i = 1 to t.n_active - 1 do
    if t.cleaners.(i).queued < !best.queued then best := t.cleaners.(i)
  done;
  !best.queued <- !best.queued + 1;
  t.pending_msgs <- t.pending_msgs + 1;
  Wafl_obs.Metrics.set t.g_pending (float_of_int t.pending_msgs);
  Sync.Channel.send !best.chan
    (Work
       {
         segments = work;
         posted_at = Engine.now t.eng;
         h = Wafl_obs.Causal.capture t.obs ~kind:"clean";
       })

let wait_idle t =
  while t.pending_msgs > 0 do
    Sync.Waitq.wait t.idle
  done;
  (* Acquire every finished cleaner message's history before the caller
     inspects what the cleaning produced. *)
  Engine.probe_atomic t.eng ~shared:"cleaner_pool.state"

let flush_and_wait t =
  let remaining = ref (Array.length t.cleaners) in
  let me = Engine.self t.eng in
  Array.iter
    (fun c ->
      Sync.Channel.send c.chan
        (Flushreq
           (fun () ->
             (* Per-cleaner acks decrement a shared countdown. *)
             Engine.probe_atomic t.eng ~shared:"cleaner_pool.flush_remaining";
             decr remaining;
             if !remaining = 0 then Engine.wake t.eng me)))
    t.cleaners;
  Engine.probe_atomic t.eng ~shared:"cleaner_pool.flush_remaining";
  if !remaining > 0 then Engine.park t.eng

let buffers_cleaned t = t.n_buffers
let inodes_cleaned t = t.n_inodes
let messages_processed t = t.n_messages
let get_waits t = t.n_get_waits
let utilization_busy t = t.busy
