type target = Phys of { rg : int; drive : int } | Virt of { vol : int }

type t = {
  target : target;
  tetris : Tetris.t option;
  vbns : int array;
  mutable next : int;
  mutable committed : bool;
}

let make ~target ?tetris ~vbns () =
  (match (target, tetris) with
  | Phys _, None -> invalid_arg "Bucket.make: physical bucket needs a tetris"
  | Virt _, Some _ -> invalid_arg "Bucket.make: virtual bucket cannot have a tetris"
  | Phys _, Some _ | Virt _, None -> ());
  { target; tetris; vbns; next = 0; committed = false }

let target t = t.target
let tetris t = t.tetris
let capacity t = Array.length t.vbns
let remaining t = Array.length t.vbns - t.next
let is_exhausted t = remaining t = 0

let take t =
  if is_exhausted t then None
  else begin
    let v = t.vbns.(t.next) in
    t.next <- t.next + 1;
    Some v
  end

let consumed t = Array.to_list (Array.sub t.vbns 0 t.next)
let consumed_count t = t.next
let unused t = Array.to_list (Array.sub t.vbns t.next (Array.length t.vbns - t.next))
let mark_committed t = t.committed <- true
let is_committed t = t.committed
