open Wafl_sim

type t = {
  eng : Engine.t;
  raid : Wafl_fs.Layout.block Wafl_storage.Raid.t;
  obs : Wafl_obs.Trace.t;
  obs_on : bool;
  m_fill : Wafl_obs.Metrics.histo;
  mutable pending : (int * Wafl_fs.Layout.block) list; (* newest first *)
  mutable pending_count : int;
  mutable outstanding : int;
  mutable ios : int;
  mutable blocks : int;
}

let create ?(obs = Wafl_obs.Trace.disabled) eng ~cost ~raid ~expected_buckets =
  ignore cost;
  if expected_buckets < 0 then invalid_arg "Tetris.create: negative bucket count";
  {
    eng;
    raid;
    obs;
    obs_on = Wafl_obs.Trace.enabled obs;
    m_fill = Wafl_obs.Metrics.histogram (Wafl_obs.Trace.metrics obs) "tetris.fill_blocks";
    pending = [];
    pending_count = 0;
    outstanding = expected_buckets;
    ios = 0;
    blocks = 0;
  }

(* The tetris dispatch structure is lock-protected in real WAFL (the I/O
   dispatch lock, whose cost the write path amortizes); writers from any
   affinity or cleaner may enqueue, so model it as atomic. *)
let dispatch_probe t =
  if Engine.sanitizing t.eng then
    Engine.probe_atomic t.eng
      ~shared:(Printf.sprintf "tetris.rg%d" (Wafl_storage.Raid.rg t.raid))

let enqueue t ~vbn ~payload =
  dispatch_probe t;
  t.pending <- (vbn, payload) :: t.pending;
  t.pending_count <- t.pending_count + 1

let pending_blocks t = t.pending_count

let submit_now t =
  dispatch_probe t;
  if t.pending_count > 0 then begin
    Wafl_obs.Metrics.observe t.m_fill (float_of_int t.pending_count);
    let writes = List.rev t.pending in
    let blocks = t.pending_count in
    t.pending <- [];
    t.ios <- t.ios + 1;
    t.blocks <- t.blocks + blocks;
    t.pending_count <- 0;
    let submit () = Wafl_storage.Raid.submit t.raid ~writes ~on_complete:(fun () -> ()) in
    if t.obs_on then
      Wafl_obs.Trace.with_span t.obs ~cat:"tetris" ~name:"stripe fill"
        ~num_args:[ ("blocks", float_of_int blocks) ]
        submit
    else submit ()
  end

let bucket_done t =
  dispatch_probe t;
  t.outstanding <- t.outstanding - 1;
  if t.outstanding <= 0 then submit_now t

let ios_submitted t = t.ios
let blocks_submitted t = t.blocks

(* Temperature classifier for the flash [streams] policy: every metafile
   class is hot (re-dirtied each CP), and a data block is hot when its
   observed rewrite interval — CP-placement count since this (vol, file,
   fbn) was last written — is shorter than the number of tracked blocks,
   i.e. shorter than the interval a uniformly-rewritten block would show.
   Segregating short-lived from long-lived pages keeps erase blocks
   death-time-homogeneous, which is what lowers GC write amplification
   ("Enlightening Flash Storage to Stream Writes by Objects").  The
   tracker is the write-allocator's equivalent of the per-write stream
   hints a host passes to a multi-stream SSD; it is deterministic, so a
   seeded run classifies identically on replay. *)
let make_temperature_stream () : Wafl_fs.Layout.block -> int =
  let last = Hashtbl.create 4096 in
  let n = ref 0 in
  function
  | Wafl_fs.Layout.Data { vol; file; fbn; _ } ->
      incr n;
      let key = (vol, file, fbn) in
      let tracked = Hashtbl.length last in
      let hot =
        match Hashtbl.find_opt last key with
        | Some prev -> !n - prev < tracked
        | None -> false
      in
      Hashtbl.replace last key !n;
      if hot then 1 else 0
  | Wafl_fs.Layout.Bmap _ | Wafl_fs.Layout.Inode_chunk _ | Wafl_fs.Layout.Container _
  | Wafl_fs.Layout.Vol_map _ | Wafl_fs.Layout.Agg_map _ ->
      1
