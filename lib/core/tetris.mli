(** The tetris: the unit of write I/O (paper §IV-E).

    One tetris per RAID group per bucket refill cycle.  Cleaner threads
    enqueue write-allocated buffers into the per-drive column matching
    their bucket; no lock is needed because the cleaner owning a bucket
    has exclusive access to that drive's column.  A reference count of
    outstanding buckets is decremented as buckets are returned; when it
    reaches zero the accumulated blocks are submitted to RAID as one I/O.
    {!submit_now} force-flushes a partial tetris at a CP boundary (these
    flushes are the main source of partial-stripe writes). *)

type t

val create :
  ?obs:Wafl_obs.Trace.t ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  raid:Wafl_fs.Layout.block Wafl_storage.Raid.t ->
  expected_buckets:int ->
  t
(** [obs] (default disabled) records the tetris fill — blocks accumulated
    per submitted I/O — in the ["tetris.fill_blocks"] histogram, the
    quantity behind the full-vs-partial-stripe mix. *)

val enqueue : t -> vbn:int -> payload:Wafl_fs.Layout.block -> unit
val pending_blocks : t -> int
val bucket_done : t -> unit
(** Atomically decrement the outstanding-bucket count; submits the I/O at
    zero.  Must be called from fiber context (I/O dispatch charges CPU). *)

val submit_now : t -> unit
(** Submit whatever has accumulated (no-op when empty). *)

val ios_submitted : t -> int
val blocks_submitted : t -> int

val make_temperature_stream : unit -> Wafl_fs.Layout.block -> int
(** Build a flash write-stream classifier for {!Walloc}'s [streams]
    policy: stream 1 (hot) for every metafile class (re-dirtied each CP)
    and for data blocks whose observed rewrite interval is shorter than a
    uniformly-rewritten block's would be; stream 0 (cold) otherwise.  The
    classifier is stateful (per-block last-write tracking) but
    deterministic.  Keeping erase blocks death-time-homogeneous is what
    lowers GC write amplification. *)
