(** The pool of parallel inode cleaner threads (paper §IV-B1, §V-B).

    Each cleaner is a fiber with a private work channel; cleaners bypass
    Waffinity entirely and interact with allocation state only through
    the {!Api} operations and their thread-local {!Stage}s and
    loose-accounting tokens.  Work is assigned to the least-loaded
    {e active} cleaner; the number of active cleaners is adjusted either
    statically or by the dynamic tuner ({!set_active}).

    A {!work} value is one cleaner message: a batch of inode segments
    (batched inode cleaning, §V-C, groups many small inodes into one
    message to amortize the per-message overhead; large inodes are split
    into multiple segments so several cleaners can process one file). *)

type segment = {
  vol : Wafl_fs.Volume.t;
  file : Wafl_fs.File.t;
  buffers : (int * int64) list;  (** (fbn, content), ascending fbn *)
  whole_inode : bool;  (** charge the per-inode overhead for this segment *)
}

type work = segment list

type t

val create : ?obs:Wafl_obs.Trace.t -> Infra.t -> max_threads:int -> initial_threads:int -> t
(** [obs] (default disabled) wraps each cleaner work message in a
    ["clean work"] span and records pool utilization under the
    ["cleaner."] metric prefix (cumulative busy time, active-thread and
    pending-message gauges). *)

val engine : t -> Wafl_sim.Engine.t
val max_threads : t -> int
val active : t -> int

val set_active : t -> int -> unit
(** Clamp to [1, max_threads].  Activation charges the thread-wake cost
    to the caller; deactivated cleaners first finish their queued work. *)

val submit : t -> work -> unit
(** Assign one message to the least-loaded active cleaner. *)

val wait_idle : t -> unit
(** Park until every submitted message has been fully processed. *)

val flush_and_wait : t -> unit
(** Make every cleaner (active or not) PUT its partially used buckets and
    commit its stages and token, then wait for the acknowledgements.
    Called at the end of a CP's cleaning phase. *)

(** {1 Statistics} *)

val buffers_cleaned : t -> int
val inodes_cleaned : t -> int
val messages_processed : t -> int
val get_waits : t -> int
(** Times a cleaner parked in GET because the bucket cache was empty —
    the backpressure signal of an underpowered infrastructure. *)

val utilization_busy : t -> float
(** Cumulative virtual µs cleaners spent busy (for the dynamic tuner). *)

val dump : t -> out_channel -> unit
(** Diagnostic dump of per-cleaner bucket/queue state. *)
