(** Facade wiring a complete White Alligator write-allocation stack onto
    an aggregate: Waffinity scheduler, infrastructure, cleaner pool,
    optional dynamic tuner and the CP engine.

    The paper's four evaluation permutations (Figures 4 and 7) are pure
    configuration here:

    - serialized baseline: [parallel_infra = false], [cleaner_threads = 1]
    - parallel infrastructure only: [parallel_infra = true], 1 cleaner
    - parallel cleaners only: [parallel_infra = false], N cleaners
    - full White Alligator: both parallel

    matching the instrumented-kernel methodology of §V-A. *)

type config = {
  workers : int option;  (** Waffinity worker threads; default = cores *)
  parallel_infra : bool;
  cleaner_threads : int;  (** initial / static active cleaner count *)
  max_cleaner_threads : int;
  dynamic_cleaners : bool;
  tuner : Tuner.config;
  chunk : int;
  ranges : int;
  vol_buckets : int;
  stage_capacity : int;
  batching : bool;
  batch_max_inodes : int;
  batch_max_buffers : int;
  segment_buffers : int;
  cp_timer : float option;
  serial_cleaning : bool;
      (** run the historical pre-2008 serial-affinity allocator instead of
          White Alligator (ablation of the §III evolution) *)
  fair_cp : bool;
      (** round-robin CP cleaning work across volumes (fair CP admission,
          DESIGN.md §4.11); off reproduces the volume-order walk *)
  streams : [ `Off | `Temperature ];
      (** flash multi-stream routing: [`Temperature] sends metafile
          payloads and frequently-rewritten data blocks to a hot write
          stream and long-lived data to a cold one
          ({!Tetris.make_temperature_stream}).  Only meaningful with a
          {!Wafl_flash.Ftl} media model attached to the aggregate. *)
}

val default_config : config
(** Full White Alligator: parallel infrastructure, 4 cleaner threads (max
    8), no dynamic tuning, batching on. *)

val serialized_config : config
(** The pre-White-Alligator baseline: one cleaner thread and serialized
    infrastructure. *)

type t

val create : ?obs:Wafl_obs.Trace.t -> Wafl_fs.Aggregate.t -> config -> t
(** [obs] (default disabled) threads one tracer through every component:
    scheduler message spans and queue histograms, cleaner-pool work spans
    and utilization, tetris fill, and the CP phase timeline.  Note the
    RAID layer is instrumented separately — pass the same tracer to
    [Aggregate.create].

    Also installs [Cp.request] as the aggregate's early-CP trigger
    ({!Wafl_fs.Aggregate.set_cp_trigger}), which NVLog watermark
    admission uses; a no-op unless watermarks are configured. *)

val config : t -> config
val aggregate : t -> Wafl_fs.Aggregate.t
val scheduler : t -> Wafl_waffinity.Scheduler.t
val infra : t -> Infra.t
val pool : t -> Cleaner_pool.t
val cp : t -> Cp.t
val tuner : t -> Tuner.t option

val register_volume : t -> Wafl_fs.Volume.t -> unit
(** Volumes created after {!create} must be registered so the
    infrastructure starts filling their vvbn buckets. *)
