open Wafl_sim
open Wafl_fs

type config = {
  batching : bool;
  batch_max_inodes : int;
  batch_max_buffers : int;
  segment_buffers : int;
  timer_interval : float option;
  serial_cleaning : bool;
      (* historical pre-2008 mode: inode cleaning runs as Serial-affinity
         messages with VBN-at-a-time allocation and direct metafile
         access, excluding all client processing (paper SIII-B/C) *)
  fair_cp : bool;
      (* round-robin cleaning work across volumes so one hot tenant
         cannot monopolize the front of a checkpoint (DESIGN.md §4.11) *)
}

let default_config =
  {
    batching = true;
    batch_max_inodes = 16;
    batch_max_buffers = 64;
    segment_buffers = 4096;
    timer_interval = None;
    serial_cleaning = false;
    fair_cp = false;
  }

type serial_state = {
  mutable pvbn_cursor : int;
  vvbn_cursors : (int, int ref) Hashtbl.t;
  io_buffers : (int * Layout.block) list ref array; (* per RAID group *)
  io_counts : int array;
}

type record = {
  generation : int;
  started_at : float;
  duration : float;
  buffers : int;
  meta_blocks : int;
  passes : int;
}

type t = {
  eng : Engine.t;
  cost : Cost.t;
  infra : Infra.t;
  pool : Cleaner_pool.t;
  cfg : config;
  agg : Aggregate.t;
  obs : Wafl_obs.Trace.t;
  m_cps : Wafl_obs.Metrics.counter;
  h_cp : Wafl_obs.Metrics.histo;
  m_cp_buffers : Wafl_obs.Metrics.counter;
  m_b2b : Wafl_obs.Metrics.counter;
  m_b2b_episodes : Wafl_obs.Metrics.counter;
  (* The previous CP committed with the half-full trigger already reached
     again: the CP starting now is back-to-back (paper §II-C). *)
  mutable next_is_b2b : bool;
  mutable in_b2b_run : bool;
  serial : serial_state;
  mutable history : record list; (* newest first, bounded *)
  mutable requested : bool;
  mutable is_running : bool;
  manager : Sync.Waitq.t;
  completion : Sync.Waitq.t;
  mutable n_cps : int;
  mutable last_duration : float;
  mutable last_buffers : int;
  mutable last_meta : int;
  mutable last_passes : int;
  mutable phase : string;
  mutable phase_start : float;
  (* Phase-duration histogram handles, cached by phase name: phases
     change many times per CP and the registry lookup concats + hashes a
     string each time. *)
  phase_histos : (string, Wafl_obs.Metrics.histo) Hashtbl.t;
}

(* Phase transition: closes the previous phase's span (the CP timeline in
   the exported trace) and records its duration in a per-phase histogram.
   "idle" delimits CPs and is never emitted as a span. *)
let phase_histo t name =
  match Hashtbl.find_opt t.phase_histos name with
  | Some h -> h
  | None ->
      let h = Wafl_obs.Metrics.histogram (Wafl_obs.Trace.metrics t.obs) ("cp.phase_us." ^ name) in
      Hashtbl.add t.phase_histos name h;
      h

let set_phase t name =
  (if t.phase <> "idle" then begin
     let dur = Engine.now t.eng -. t.phase_start in
     Wafl_obs.Metrics.observe (phase_histo t t.phase) dur;
     if Wafl_obs.Trace.enabled t.obs then
       Wafl_obs.Trace.complete t.obs ~cat:"cp" ~name:("cp " ^ t.phase) ~ts:t.phase_start ~dur ()
   end);
  t.phase <- name;
  t.phase_start <- Engine.now t.eng

(* --- work distribution (batching + segmentation, §V-C) ------------------ *)

let build_work_seq t snapshot =
  let units = ref [] in
  let batch = ref [] and batch_inodes = ref 0 and batch_buffers = ref 0 in
  let flush_batch () =
    if !batch <> [] then begin
      units := List.rev !batch :: !units;
      batch := [];
      batch_inodes := 0;
      batch_buffers := 0
    end
  in
  List.iter
    (fun (vol, files) ->
      List.iter
        (fun file ->
          (* Count first — most files are clean, and the count is O(1)
             while [cp_buffers] builds a sorted list. *)
          let n = File.cp_buffer_count file in
          if n = 0 then ()
          else
            let buffers = File.cp_buffers file in
            if n > t.cfg.segment_buffers then begin
            (* Large inode: split so several cleaners share it. *)
            flush_batch ();
            let rec split remaining first =
              match remaining with
              | [] -> ()
              | _ ->
                  let rec take k acc rest =
                    if k = 0 then (List.rev acc, rest)
                    else
                      match rest with
                      | [] -> (List.rev acc, [])
                      | x :: tl -> take (k - 1) (x :: acc) tl
                  in
                  let seg, rest = take t.cfg.segment_buffers [] remaining in
                  units :=
                    [ { Cleaner_pool.vol; file; buffers = seg; whole_inode = first } ]
                    :: !units;
                  split rest false
            in
            split buffers true
          end
          else if t.cfg.batching then begin
            if
              !batch_inodes >= t.cfg.batch_max_inodes
              || !batch_buffers + n > t.cfg.batch_max_buffers && !batch_inodes > 0
            then flush_batch ();
            batch := { Cleaner_pool.vol; file; buffers; whole_inode = true } :: !batch;
            incr batch_inodes;
            batch_buffers := !batch_buffers + n
          end
          else units := [ { Cleaner_pool.vol; file; buffers; whole_inode = true } ] :: !units)
        files)
    snapshot;
  flush_batch ();
  List.rev !units

(* Fair CP admission: build each volume's work units independently (so
   batches never span volumes), then round-robin the units across
   volumes.  Cleaners pull units in submission order, so interleaving the
   list bounds how long any volume waits behind a hot neighbour. *)
let build_work t snapshot =
  if t.cfg.fair_cp then
    Wafl_qos.Fair.interleave (List.map (fun entry -> build_work_seq t [ entry ]) snapshot)
  else build_work_seq t snapshot

(* --- metafile pass ------------------------------------------------------ *)

(* Relocate and write out every dirty metafile block.

   Phase A (on the CP fiber): assign a fresh pvbn to every dirty block,
   iterating to a fixpoint because assignments and frees dirty the
   aggregate activemap chunks; each block is relocated at most once per
   pass and allocation bits are committed inline, so the activemap
   content is final when phase A ends.  Exhausted buckets are returned
   immediately (marked committed) so refill cycles keep running through
   metafile-heavy CPs.

   Phase B: serialization and tetris enqueue of the (possibly thousands
   of) relocated blocks fan out as Waffinity messages in Range
   affinities — the paper's "most expensive infrastructure operations
   run in Range affinities" optimization, and the reason infrastructure
   parallelization pays off for random-write workloads whose scattered
   frees dirty many container and bitmap blocks. *)
let metafile_pass t =
  let current = ref None in
  (* Insertion-ordered set of tetrises (physical identity): hashing a
     tetris record would make the final submit order depend on structural
     hash internals. *)
  let tetrises = ref [] in
  let note_tetris bucket =
    match Bucket.tetris bucket with
    | Some tetris -> if not (List.memq tetris !tetrises) then tetrises := tetris :: !tetrises
    | None -> ()
  in
  let put_current () =
    match !current with
    | Some bucket ->
        Api.put t.infra bucket;
        current := None
    | None -> ()
  in
  let rec alloc_meta () =
    match !current with
    | Some bucket -> (
        match Api.take_deferred bucket with
        | Some pvbn ->
            Engine.consume t.cost.Cost.bitmap_bit_update;
            Aggregate.commit_alloc_pvbn t.agg pvbn;
            (pvbn, bucket)
        | None ->
            put_current ();
            alloc_meta ())
    | None ->
        Engine.consume (t.cost.Cost.lock_acquire +. t.cost.Cost.bucket_fixed);
        let bucket = Api.get_phys t.infra in
        Bucket.mark_committed bucket;
        note_tetris bucket;
        current := Some bucket;
        alloc_meta ()
  in
  (* Phase A: assignment fixpoint. *)
  let assigned : (Aggregate.meta_ref, int * Bucket.t) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let passes = ref 0 in
  let continue_passes = ref true in
  while !continue_passes do
    incr passes;
    if !passes > 24 then failwith "Cp: metafile relocation did not converge";
    let refs = Aggregate.take_dirty_meta t.agg in
    let progressed = ref false in
    List.iter
      (fun ref_ ->
        if not (Hashtbl.mem assigned ref_) then begin
          progressed := true;
          let pvbn, bucket = alloc_meta () in
          let old = Aggregate.meta_set_location t.agg ref_ pvbn in
          if old >= 0 then begin
            Engine.consume t.cost.Cost.bitmap_bit_update;
            Aggregate.commit_free_pvbn t.agg old
          end;
          Hashtbl.add assigned ref_ (pvbn, bucket);
          order := ref_ :: !order
        end)
      refs;
    if not !progressed then continue_passes := false
  done;
  put_current ();
  (* Phase B: parallel serialization + enqueue, batched per affinity.
     Batches are posted in first-appearance order of their affinity so
     the message sequence is independent of hash internals. *)
  let batches = Hashtbl.create 16 in
  let batch_order = ref [] in
  List.iter
    (fun ref_ ->
      let affinity = Infra.meta_affinity t.infra ref_ in
      (match Hashtbl.find_opt batches affinity with
      | None ->
          batch_order := affinity :: !batch_order;
          Hashtbl.add batches affinity [ ref_ ]
      | Some cur -> Hashtbl.replace batches affinity (ref_ :: cur)))
    (List.rev !order);
  let outstanding = ref 0 in
  let me = Engine.self t.eng in
  let batch_size = 32 in
  List.iter
    (fun affinity ->
      let refs = Hashtbl.find batches affinity in
      let rec chunks = function
        | [] -> ()
        | refs ->
            let rec take k acc rest =
              if k = 0 then (acc, rest)
              else match rest with [] -> (acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
            in
            let batch, rest = take batch_size [] refs in
            (* The fan-out countdown is shared with every phase-B message
               (an atomic in a real kernel). *)
            Engine.probe_atomic t.eng ~shared:"cp.meta_outstanding";
            incr outstanding;
            Infra.post_meta t.infra ~affinity (fun () ->
                List.iter
                  (fun ref_ ->
                    let pvbn, bucket = Hashtbl.find assigned ref_ in
                    let payload = Aggregate.meta_payload t.agg ref_ in
                    Engine.consume t.cost.Cost.metafile_block_touch;
                    Api.enqueue_deferred bucket ~vbn:pvbn ~payload)
                  batch;
                Engine.probe_atomic t.eng ~shared:"cp.meta_outstanding";
                decr outstanding;
                if !outstanding = 0 then Engine.wake t.eng me);
            chunks rest
      in
      chunks refs)
    (List.rev !batch_order);
  if !outstanding > 0 then Engine.park t.eng;
  Engine.probe_atomic t.eng ~shared:"cp.meta_outstanding";
  (* Force out the tetrises that received metafile blocks: their buckets
     may already have been returned and their cycles retired. *)
  List.iter Tetris.submit_now (List.rev !tetrises);
  (Hashtbl.length assigned, !passes)

(* --- deferred file deletion ---------------------------------------------- *)

(* Zombie processing: a deleted file's blocks are reclaimed during the
   next CP — data vvbns and pvbns through the normal free-commit path
   (parallel across Range affinities), block-map metafile blocks as
   physical frees, and finally the inode-table entry disappears, which
   rewrites its inode chunk.  Idempotent so a replayed deletion after a
   crash is harmless. *)
let process_zombies t =
  List.iter
    (fun vol ->
      List.iter
        (fun file ->
          if Volume.file vol (File.id file) <> None then begin
            let token = Counters.token (Aggregate.counters t.agg) in
            let vvbns = ref [] and pvbns = ref [] in
            for fbn = 0 to File.nfbns file - 1 do
              let vvbn = File.vvbn_of_fbn file fbn in
              if vvbn >= 0 then begin
                let pvbn = Volume.map_vvbn vol ~vvbn ~pvbn:(-1) in
                if pvbn >= 0 then pvbns := pvbn :: !pvbns;
                vvbns := vvbn :: !vvbns
              end
            done;
            (* The block-map metafile blocks are freed too. *)
            let rec_ = File.inode_rec file in
            Array.iter (fun (_, pvbn) -> pvbns := pvbn :: !pvbns) rec_.Layout.bmap_pvbns;
            let rec in_batches target = function
              | [] -> ()
              | vbns ->
                  let rec take k acc rest =
                    if k = 0 then (acc, rest)
                    else
                      match rest with [] -> (acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
                  in
                  let batch, rest = take 64 [] vbns in
                  Infra.commit_frees t.infra ~target ~vbns:batch ~token;
                  in_batches target rest
            in
            in_batches (Stage.Virt { vol = Volume.id vol }) !vvbns;
            in_batches Stage.Phys !pvbns;
            Counters.stage token "files_deleted" 1;
            Volume.remove_file vol (File.id file)
          end)
        (Volume.take_zombies vol))
    (Aggregate.volumes t.agg)

(* --- historical serial-affinity cleaning (pre-2008, SIII-B/C) ------------ *)

(* One VBN at a time, straight out of the allocation bitmaps, with every
   metafile update made inline — the design whose serialization motivated
   first the single cleaner thread and then White Alligator.  All work
   runs in the Serial affinity, so client operations are excluded while
   cleaning proceeds. *)

let serial_alloc_in t map ~allocatable ~cursor ~limit =
  let scanned_before = Bitmap_file.words_scanned map in
  let rec hunt ~wrapped start =
    match Bitmap_file.find_free map ~lo:0 ~hi:(limit - 1) ~start with
    | Some v when allocatable v -> Some v
    | Some v -> hunt ~wrapped (v + 1)
    | None -> if wrapped then None else hunt ~wrapped:true 0
  in
  let found = hunt ~wrapped:false !cursor in
  Engine.consume
    (float_of_int (Bitmap_file.words_scanned map - scanned_before)
    *. t.cost.Cost.bitmap_scan_word);
  match found with
  | Some v ->
      cursor := v + 1;
      v
  | None -> failwith "serial allocator: out of space"

let serial_pvbn_cursor t = ref t.serial.pvbn_cursor

let serial_alloc_pvbn t =
  let cursor = serial_pvbn_cursor t in
  let v =
    serial_alloc_in t (Aggregate.agg_map t.agg)
      ~allocatable:(fun v -> Aggregate.pvbn_allocatable t.agg v)
      ~cursor
      ~limit:(Wafl_storage.Geometry.total_data_blocks (Aggregate.geometry t.agg))
  in
  t.serial.pvbn_cursor <- !cursor;
  Engine.consume (t.cost.Cost.metafile_block_touch +. t.cost.Cost.bitmap_bit_update);
  Aggregate.commit_alloc_pvbn t.agg v;
  v

let serial_alloc_vvbn t vol =
  let cursor =
    match Hashtbl.find_opt t.serial.vvbn_cursors (Volume.id vol) with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add t.serial.vvbn_cursors (Volume.id vol) c;
        c
  in
  let v =
    serial_alloc_in t (Volume.vol_map vol)
      ~allocatable:(fun v -> Aggregate.vvbn_allocatable t.agg ~vol v)
      ~cursor ~limit:(Volume.vvbn_space vol)
  in
  Engine.consume (t.cost.Cost.metafile_block_touch +. t.cost.Cost.bitmap_bit_update);
  Aggregate.commit_alloc_vvbn t.agg ~vol v;
  v

let serial_enqueue_write t pvbn payload =
  let geom = Aggregate.geometry t.agg in
  let rg = (Wafl_storage.Geometry.locate geom pvbn).Wafl_storage.Geometry.rg in
  let buf = t.serial.io_buffers.(rg) in
  buf := (pvbn, payload) :: !buf;
  t.serial.io_counts.(rg) <- t.serial.io_counts.(rg) + 1;
  if t.serial.io_counts.(rg) >= 1024 then begin
    Wafl_storage.Raid.submit (Aggregate.raid t.agg ~rg) ~writes:(List.rev !buf)
      ~on_complete:(fun () -> ());
    buf := [];
    t.serial.io_counts.(rg) <- 0
  end

let serial_flush_io t =
  Array.iteri
    (fun rg buf ->
      if !buf <> [] then begin
        Wafl_storage.Raid.submit (Aggregate.raid t.agg ~rg) ~writes:(List.rev !buf)
          ~on_complete:(fun () -> ());
        buf := [];
        t.serial.io_counts.(rg) <- 0
      end)
    t.serial.io_buffers

let serial_clean_buffer t vol file (fbn, content) =
  let vvbn = serial_alloc_vvbn t vol in
  let pvbn = serial_alloc_pvbn t in
  let old_vvbn = File.set_vvbn file ~fbn ~vvbn in
  ignore (Volume.map_vvbn vol ~vvbn ~pvbn);
  if old_vvbn >= 0 then begin
    let old_pvbn = Volume.map_vvbn vol ~vvbn:old_vvbn ~pvbn:(-1) in
    Engine.consume (2.0 *. (t.cost.Cost.metafile_block_touch +. t.cost.Cost.bitmap_bit_update));
    Aggregate.commit_free_vvbn t.agg ~vol old_vvbn;
    Aggregate.commit_free_pvbn t.agg old_pvbn
  end;
  serial_enqueue_write t pvbn
    (Layout.Data { vol = Volume.id vol; file = File.id file; fbn; content });
  Engine.consume t.cost.Cost.clean_buffer

(* Clean everything through Serial-affinity messages of bounded size;
   each message excludes the whole file system while it runs. *)
let serial_clean t snapshot =
  let sched = Infra.scheduler t.infra in
  List.iter
    (fun (vol, files) ->
      List.iter
        (fun file ->
          let buffers = File.cp_buffers file in
          if buffers <> [] then begin
            let rec in_chunks = function
              | [] -> ()
              | buffers ->
                  let rec take k acc rest =
                    if k = 0 then (List.rev acc, rest)
                    else
                      match rest with
                      | [] -> (List.rev acc, [])
                      | x :: tl -> take (k - 1) (x :: acc) tl
                  in
                  let chunk, rest = take 256 [] buffers in
                  Wafl_waffinity.Scheduler.post_wait sched ~affinity:Wafl_waffinity.Affinity.Serial
                    ~label:"cleaner" (fun () ->
                      Engine.consume t.cost.Cost.clean_inode_overhead;
                      List.iter (serial_clean_buffer t vol file) chunk);
                  in_chunks rest
            in
            in_chunks buffers
          end)
        files)
    snapshot

let serial_metafile_pass t =
  (* Same fixpoint discipline as the White Alligator pass: each block is
     relocated at most once per CP; non-activemap blocks are serialized
     at assignment time, aggregate-activemap chunks only after all
     allocation bits have settled. *)
  let written = ref 0 in
  let passes = ref 0 in
  let aggmap_assigned : (Aggregate.meta_ref, int) Hashtbl.t = Hashtbl.create 64 in
  let aggmap_order = ref [] in
  let continue_passes = ref true in
  while !continue_passes do
    incr passes;
    if !passes > 24 then failwith "Cp: serial metafile relocation did not converge";
    let refs = Aggregate.take_dirty_meta t.agg in
    let progressed = ref false in
    List.iter
      (fun ref_ ->
        match ref_ with
        | Aggregate.Agg_map_chunk _ ->
            if not (Hashtbl.mem aggmap_assigned ref_) then begin
              progressed := true;
              let pvbn = serial_alloc_pvbn t in
              let old = Aggregate.meta_set_location t.agg ref_ pvbn in
              if old >= 0 then begin
                Engine.consume t.cost.Cost.bitmap_bit_update;
                Aggregate.commit_free_pvbn t.agg old
              end;
              Hashtbl.add aggmap_assigned ref_ pvbn;
              aggmap_order := ref_ :: !aggmap_order
            end
        | _ ->
            progressed := true;
            let pvbn = serial_alloc_pvbn t in
            let old = Aggregate.meta_set_location t.agg ref_ pvbn in
            if old >= 0 then begin
              Engine.consume t.cost.Cost.bitmap_bit_update;
              Aggregate.commit_free_pvbn t.agg old
            end;
            let payload = Aggregate.meta_payload t.agg ref_ in
            Engine.consume t.cost.Cost.metafile_block_touch;
            serial_enqueue_write t pvbn payload;
            incr written)
      refs;
    if not !progressed then continue_passes := false
  done;
  (* Write the settled activemap chunks in assignment order — iterating
     the table would tie the I/O sequence to hash internals. *)
  List.iter
    (fun ref_ ->
      let pvbn = Hashtbl.find aggmap_assigned ref_ in
      let payload = Aggregate.meta_payload t.agg ref_ in
      Engine.consume t.cost.Cost.metafile_block_touch;
      serial_enqueue_write t pvbn payload;
      incr written)
    (List.rev !aggmap_order);
  (!written, !passes)

(* --- repair of failed writes (fault injection) -------------------------- *)

let meta_ref_of_payload = function
  | Layout.Bmap { vol; file; index; _ } -> Some (Aggregate.Bmap_block { vol; file; index })
  | Layout.Inode_chunk { vol; index; _ } -> Some (Aggregate.Inode_chunk { vol; index })
  | Layout.Container { vol; index; _ } -> Some (Aggregate.Container_chunk { vol; index })
  | Layout.Vol_map { vol; index; _ } -> Some (Aggregate.Vol_map_chunk { vol; index })
  | Layout.Agg_map { index; _ } -> Some (Aggregate.Agg_map_chunk { index })
  | Layout.Data _ -> None

(* Free a pvbn whose write failed, unless something else already released
   it (the mapping moved on within this CP). *)
let repair_free t old_pvbn =
  if old_pvbn >= 0 && Bitmap_file.mem (Aggregate.agg_map t.agg) old_pvbn then begin
    Engine.consume t.cost.Cost.bitmap_bit_update;
    Aggregate.commit_free_pvbn t.agg old_pvbn
  end

(* After the io-flush quiesce, writes the RAID layer failed permanently
   (bad sector, transient retries exhausted) are re-allocated at fresh
   pvbns and re-submitted before the superblock is published, so the
   commit-point invariant — the superblock only references durable
   blocks — holds under injected faults.  Frees from this CP are frozen
   until publish, so each round draws genuinely fresh pvbns and a bad
   sector is never retried in place; relocations re-dirty metafile
   blocks, which another serial metafile pass flushes.  Iterates because
   the re-submitted writes can fail too. *)
let repair_failed_writes t =
  let repaired = ref 0 in
  let rounds = ref 0 in
  let continue_rounds = ref true in
  while !continue_rounds do
    let failed =
      Array.fold_left
        (fun acc raid -> acc @ Wafl_storage.Raid.take_failed raid)
        []
        (Aggregate.raid_groups t.agg)
    in
    if failed = [] then continue_rounds := false
    else begin
      incr rounds;
      if !rounds > 16 then failwith "Cp: write repair did not converge";
      List.iter
        (fun (old_pvbn, payload) ->
          match payload with
          | Layout.Data { vol; file; fbn; content = _ } -> (
              (* Re-map the vvbn only if it still points at the failed
                 location; otherwise just make sure the pvbn is not
                 leaked. *)
              match Aggregate.volume t.agg vol with
              | None -> repair_free t old_pvbn
              | Some v -> (
                  match Volume.file v file with
                  | None -> repair_free t old_pvbn
                  | Some f ->
                      let vvbn = File.vvbn_of_fbn f fbn in
                      if vvbn >= 0 && Volume.pvbn_of_vvbn v vvbn = old_pvbn then begin
                        let pvbn = serial_alloc_pvbn t in
                        ignore (Volume.map_vvbn v ~vvbn ~pvbn);
                        serial_enqueue_write t pvbn payload;
                        incr repaired
                      end;
                      repair_free t old_pvbn))
          | meta -> (
              match meta_ref_of_payload meta with
              | Some ref_ when Aggregate.meta_location t.agg ref_ = old_pvbn ->
                  let pvbn = serial_alloc_pvbn t in
                  ignore (Aggregate.meta_set_location t.agg ref_ pvbn);
                  repair_free t old_pvbn;
                  (* Serialize after the location change so the payload
                     embeds the new location (bmap moves re-dirty the
                     inode chunk; the metafile pass below rewrites it). *)
                  serial_enqueue_write t pvbn (Aggregate.meta_payload t.agg ref_);
                  incr repaired
              | _ -> repair_free t old_pvbn))
        failed;
      (* Flush re-dirtied metafile blocks (activemap bits, relocated bmap
         locations) and push everything to disk before re-checking. *)
      ignore (serial_metafile_pass t);
      serial_flush_io t;
      Array.iter Wafl_storage.Raid.quiesce (Aggregate.raid_groups t.agg)
    end
  done;
  if !repaired > 0 then
    Counters.add (Aggregate.counters t.agg) "cp_repaired_writes" !repaired;
  !repaired

(* --- the CP itself ------------------------------------------------------ *)

(* Test-only chaos hook: publish the superblock before the io-flush
   quiesce and write repair, deliberately breaking the commit-point
   ordering.  The crash harness must catch the resulting data loss when
   a crash lands in the publish-to-quiesce window — proof that its
   oracle has teeth. *)
let chaos_publish_before_quiesce = ref false

(* Test-only chaos hook: book every CP as back-to-back.  Pure accounting
   (counters and metrics only — scheduling is untouched), used to drive
   the health watchdog's B2B-streak rule in tests. *)
let chaos_force_b2b = ref false

let publish_commit t =
  Engine.consume t.cost.Cost.cp_fixed;
  let sb = Aggregate.make_superblock t.agg in
  Engine.sleep t.cost.Cost.device_base_latency;
  Aggregate.publish_superblock t.agg sb

let run_cp_body t =
  let started = Engine.now t.eng in
  t.is_running <- true;
  (* Back-to-back bookkeeping: this CP is B2B when the previous one
     committed with the half-full trigger already re-reached, i.e. demand
     filled a log half faster than one CP could drain it.  A maximal run
     of consecutive B2B CPs is one episode. *)
  let is_b2b = t.next_is_b2b || !chaos_force_b2b in
  if is_b2b then begin
    Counters.add (Aggregate.counters t.agg) "b2b_cps" 1;
    Wafl_obs.Metrics.incr t.m_b2b;
    if not t.in_b2b_run then begin
      Counters.add (Aggregate.counters t.agg) "b2b_episodes" 1;
      Wafl_obs.Metrics.incr t.m_b2b_episodes
    end
  end;
  t.in_b2b_run <- is_b2b;
  set_phase t "snapshot";
  Engine.consume t.cost.Cost.cp_fixed;
  let snapshot = Aggregate.cp_snapshot t.agg in
  set_phase t "zombies";
  process_zombies t;
  (* Deleted files must not also be cleaned. *)
  let deleted (vol, _) file = Volume.file vol (File.id file) = None in
  let snapshot =
    List.map
      (fun (vol, files) ->
        (vol, List.filter (fun f -> not (deleted (vol, files) f)) files))
      snapshot
  in
  let buffers_total = ref 0 in
  let meta_blocks, passes =
    if t.cfg.serial_cleaning then begin
      (* Historical path: everything in the Serial affinity. *)
      set_phase t "cleaning";
      List.iter
        (fun (_, files) ->
          List.iter (fun f -> buffers_total := !buffers_total + File.cp_buffer_count f) files)
        snapshot;
      serial_clean t snapshot;
      set_phase t "metafiles";
      Engine.set_label t.eng "infra";
      let result =
        Wafl_waffinity.Scheduler.post_wait (Infra.scheduler t.infra)
          ~affinity:Wafl_waffinity.Affinity.Serial ~label:"infra" (fun () ->
            serial_metafile_pass t)
      in
      Engine.set_label t.eng "cp";
      if !chaos_publish_before_quiesce then publish_commit t;
      set_phase t "io-flush";
      serial_flush_io t;
      Array.iter Wafl_storage.Raid.quiesce (Aggregate.raid_groups t.agg);
      result
    end
    else begin
      (* Phase 1: clean all dirty inodes through the cleaner pool. *)
      let work = build_work t snapshot in
      buffers_total :=
        List.fold_left
          (fun acc w ->
            acc
            + List.fold_left
                (fun a (s : Cleaner_pool.segment) -> a + List.length s.buffers)
                0 w)
          0 work;
      set_phase t "cleaning";
      List.iter (fun w -> Cleaner_pool.submit t.pool w) work;
      Cleaner_pool.wait_idle t.pool;
      (* Phase 2: return every bucket and stage, and let the infrastructure
         apply all outstanding commits. *)
      set_phase t "flush";
      Cleaner_pool.flush_and_wait t.pool;
      set_phase t "quiesce-commits";
      Infra.quiesce_commits t.infra;
      (* Phase 3: relocate and write dirty metafile blocks.  This is
         metafile processing, so account it as infrastructure work. *)
      set_phase t "metafiles";
      Engine.set_label t.eng "infra";
      let result = metafile_pass t in
      Engine.set_label t.eng "cp";
      set_phase t "quiesce-commits-2";
      Infra.quiesce_commits t.infra;
      if !chaos_publish_before_quiesce then publish_commit t;
      (* Phase 4: push out all remaining buffered blocks and wait for
         durability. *)
      set_phase t "io-flush";
      List.iter Tetris.submit_now (Infra.live_tetrises t.infra);
      Array.iter Wafl_storage.Raid.quiesce (Aggregate.raid_groups t.agg);
      result
    end
  in
  (* Phase 4.5: re-allocate writes the RAID layer failed permanently, so
     the superblock published next only references durable blocks. *)
  set_phase t "repair";
  ignore (repair_failed_writes t);
  (* Phase 5: the atomic commit. *)
  if not !chaos_publish_before_quiesce then publish_commit t;
  Aggregate.refresh_fault_counters t.agg;
  t.n_cps <- t.n_cps + 1;
  t.last_duration <- Engine.now t.eng -. started;
  t.last_buffers <- !buffers_total;
  t.last_meta <- meta_blocks;
  t.last_passes <- passes;
  Wafl_obs.Metrics.incr t.m_cps;
  Wafl_obs.Metrics.observe t.h_cp t.last_duration;
  Wafl_obs.Metrics.add t.m_cp_buffers !buffers_total;
  if Wafl_obs.Trace.enabled t.obs then
    Wafl_obs.Trace.complete t.obs ~cat:"cp" ~name:"CP" ~ts:started ~dur:t.last_duration
      ~num_args:
        [
          ("generation", float_of_int (Aggregate.generation t.agg));
          ("buffers", float_of_int !buffers_total);
          ("meta_blocks", float_of_int meta_blocks);
          ("passes", float_of_int passes);
        ]
      ();
  t.history <-
    {
      generation = Aggregate.generation t.agg;
      started_at = started;
      duration = t.last_duration;
      buffers = t.last_buffers;
      meta_blocks;
      passes;
    }
    :: (if List.length t.history >= 64 then List.filteri (fun i _ -> i < 63) t.history
        else t.history);
  t.next_is_b2b <- Nvlog.is_half_full (Aggregate.nvlog t.agg);
  t.is_running <- false;
  set_phase t "idle";
  ignore (Sync.Waitq.wake_all t.completion)

(* Each CP runs under its own causal root: every handoff made while it
   runs — cleaner work, Waffinity posts, RAID I/Os — carries the CP's
   context, which is what lets the analyzer extract a per-CP critical
   path and attribute it to resource classes. *)
let run_cp t = Wafl_obs.Causal.with_root t.obs (fun () -> run_cp_body t)

let manager_loop t () =
  let rec loop () =
    while not t.requested do
      Sync.Waitq.wait t.manager
    done;
    t.requested <- false;
    run_cp t;
    loop ()
  in
  loop ()

let request t =
  if not t.requested then begin
    t.requested <- true;
    ignore (Sync.Waitq.wake_all t.manager)
  end

let run_now t =
  let target = t.n_cps + if t.is_running then 2 else 1 in
  request t;
  while t.n_cps < target do
    request t;
    Sync.Waitq.wait t.completion
  done

let create ?(obs = Wafl_obs.Trace.disabled) infra pool cfg =
  let agg = Infra.aggregate infra in
  let eng = Aggregate.engine agg in
  let m = Wafl_obs.Trace.metrics obs in
  let t =
    {
      eng;
      cost = Aggregate.cost agg;
      infra;
      pool;
      cfg;
      agg;
      obs;
      m_cps = Wafl_obs.Metrics.counter m "cp.count";
      h_cp = Wafl_obs.Metrics.histogram m "cp.duration_us";
      m_cp_buffers = Wafl_obs.Metrics.counter m "cp.buffers_cleaned";
      m_b2b = Wafl_obs.Metrics.counter m "cp.b2b";
      m_b2b_episodes = Wafl_obs.Metrics.counter m "cp.b2b_episodes";
      next_is_b2b = false;
      in_b2b_run = false;
      serial =
        {
          pvbn_cursor = 0;
          vvbn_cursors = Hashtbl.create 4;
          io_buffers =
            Array.init
              (Wafl_storage.Geometry.raid_group_count
                 (Aggregate.geometry (Infra.aggregate infra)))
              (fun _ -> ref []);
          io_counts =
            Array.make
              (Wafl_storage.Geometry.raid_group_count
                 (Aggregate.geometry (Infra.aggregate infra)))
              0;
        };
      history = [];
      requested = false;
      is_running = false;
      manager = Sync.Waitq.create eng;
      completion = Sync.Waitq.create eng;
      n_cps = 0;
      last_duration = 0.0;
      last_buffers = 0;
      last_meta = 0;
      last_passes = 0;
      phase = "idle";
      phase_start = 0.0;
      phase_histos = Hashtbl.create 16;
    }
  in
  ignore (Engine.spawn eng ~label:"cp" (manager_loop t));
  (match cfg.timer_interval with
  | None -> ()
  | Some interval ->
      ignore
        (Engine.spawn eng ~label:"cp" (fun () ->
             let rec tick () =
               Engine.sleep interval;
               request t;
               tick ()
             in
             tick ())));
  t

let running t = t.is_running
let phase t = t.phase
let cps_completed t = t.n_cps
let last_duration t = t.last_duration
let buffers_last_cp t = t.last_buffers
let meta_blocks_last_cp t = t.last_meta
let meta_passes_last_cp t = t.last_passes
let history t = List.rev t.history
