(** Workload driver: builds a simulated storage server (aggregate + White
    Alligator stack), populates it, applies one of the paper's workloads
    from closed-loop clients, and measures steady-state throughput,
    latency and per-component core usage (paper §V methodology).

    Clients are Fibre-Channel-style closed-loop clients: each keeps one
    outstanding operation, optionally separated by exponential think
    time (used to sweep offered load for the latency curves of Figures 8
    and 9).  Client operations execute as Waffinity messages in Stripe
    affinities; write allocation proceeds concurrently in cleaner threads
    and infrastructure messages, exactly as in the modelled system. *)

type workload =
  | Seq_write of { file_blocks : int }
      (** each client streams sequentially through its own pre-filled
          file, wrapping (every write is an overwrite) *)
  | Rand_write of { file_blocks : int }
      (** uniformly random overwrites within each client's file *)
  | Skewed_write of { file_blocks : int; hot_fraction : float; hot_rate : float }
      (** random overwrites with lifetime skew: the first [hot_fraction]
          of each file's blocks takes [hot_rate] of the writes — the
          hot/cold mix the flash multi-stream policy segregates *)
  | Mixed_write of { file_blocks : int; random_fraction : float }
      (** a blend: each op is random with probability [random_fraction],
          else the next sequential block — used to locate the crossover
          between the Figure 4 and Figure 7 regimes *)
  | Oltp of { file_blocks : int; read_fraction : float }
      (** random 4 KiB reads/writes in OLTP proportions *)
  | Nfs_mix of { files_per_client : int; file_blocks : int }
      (** many small files; mix of reads, small writes and metadata ops —
          large numbers of dirty inodes with few dirty buffers (§V-C) *)

type open_loop = {
  arrivals : Arrival.process list;
      (** one tenant per process; tenant [i] issues ops against client
          slot [i mod clients]'s files (so its volume is
          [i mod clients mod volumes] — give each tenant its own volume
          by setting [clients = volumes = length arrivals]) *)
  qos : Wafl_qos.Qos.config option;
      (** per-volume admission control; [None] admits everything *)
}
(** Open-loop overload mode (DESIGN.md §4.11): arrivals keep coming at
    the configured rates no matter how slow the server gets, so offered
    load, goodput and shedding become distinct observables. *)

type telemetry = {
  rollup : Wafl_obs.Rollup.config;
  rules : Wafl_obs.Health.rule list;
}
(** Always-on fleet telemetry (DESIGN.md §4.15): bounded-memory
    per-volume rollups plus the health watchdog.  Strictly observe-only
    — windows seal lazily inside existing write-side calls, no fiber is
    spawned — so a telemetry-on run is bit-identical to telemetry-off. *)

val default_telemetry : telemetry
(** {!Wafl_obs.Rollup.default_config} + {!Wafl_obs.Health.default_rules}. *)

type telemetry_result = {
  tr_snapshot : Wafl_obs.Rollup.snapshot;
  tr_events : Wafl_obs.Health.event list;  (** oldest first *)
  tr_health_dropped : int;  (** events beyond the watchdog log capacity *)
}

type spec = {
  cores : int;
  workload : workload;
  clients : int;
  think_time : float;  (** mean virtual µs between a reply and the next op; 0 = closed loop at full tilt *)
  volumes : int;
  cfg : Wafl_core.Walloc.config;
  cost : Wafl_sim.Cost.t;
  geometry : Wafl_storage.Geometry.t;
  nvlog_half : int;
  watermarks : Wafl_fs.Nvlog.watermarks option;
      (** NVLog watermark back-pressure ({!Wafl_fs.Nvlog.watermarks});
          [None] (default) keeps the historical half-full throttle and is
          bit-identical to the pre-watermark driver *)
  open_loop : open_loop option;
      (** [None] (default) runs the closed-loop clients *)
  flash : Wafl_flash.Ftl.config option;
      (** attach a {!Wafl_flash.Ftl} media model to every RAID group;
          [None] (default) keeps the flat device and is bit-identical to
          the pre-flash driver *)
  cache_blocks : int;  (** read buffer cache capacity *)
  warmup : float;  (** virtual µs *)
  measure : float;
  seed : int;
  sanitize : bool;  (** run under the race detector and isolation checker *)
  telemetry : telemetry option;
      (** attach fleet telemetry; [None] (default) is bit-identical to
          the pre-telemetry driver.  When set and no full tracer is
          attached, the run uses {!Wafl_obs.Trace.metrics_only} so the
          rollup can pull live metric histograms. *)
  obs : Wafl_sim.Engine.t -> Wafl_obs.Trace.t;
      (** tracer factory, called once with the run's engine before any
          component is built.  Default returns [Wafl_obs.Trace.disabled];
          to trace a run, return [Wafl_obs.Trace.create eng] and capture
          the tracer through a [ref] to export it afterwards.  Tracing
          never changes results (see DESIGN.md §4.8). *)
}

val default_spec : spec
(** 20 cores, the paper-scale SSD aggregate (2 RAID groups of 10+2,
    256 Ki-block drives), sequential write, 32 clients, full White
    Alligator configuration, 0.5 s warmup and 2 s measurement. *)

type tenant_stat = {
  t_rate : float;  (** configured mean offered rate, ops per virtual second *)
  t_offered : int;  (** arrivals inside the measure window *)
  t_admitted : int;
  t_throttled : int;  (** admitted after a QoS queueing delay *)
  t_shed : int;  (** refused deterministically (queue full) *)
  t_completed : int;
      (** windowed arrivals that finished before measurement ended;
          [t_admitted - t_completed] is the tenant's end-of-window
          backlog — unbounded under overload without QoS *)
  t_write_latency : Wafl_util.Histogram.t;
      (** end-to-end (arrival to reply, including QoS queueing) latency
          of the tenant's completed windowed writes *)
}
(** Per-tenant accounting for open-loop runs. *)

type result = {
  ops : int;
  duration : float;
  throughput : float;  (** client ops per virtual second *)
  throughput_per_client : float;
  latency : Wafl_util.Histogram.t;
  write_latency : Wafl_util.Histogram.t;
      (** end-to-end latency of the write ops alone (the paper's client
          writes; what BENCH_paper.json reports as p50/p99) *)
  reads : int;
  writes : int;
  metas : int;
  cores_client : float;
  cores_cleaner : float;
  cores_infra : float;
  cores_cp : float;
  cores_io_other : float;
  utilization : float;
  cps_completed : int;
  buffers_cleaned : int;
  vbns_allocated : int;
  vbns_freed : int;
  metafile_blocks_touched : int;
  infra_messages : int;
  cleaner_messages : int;
  get_waits : int;
  avg_active_cleaners : float;
  full_stripes : int;
  partial_stripes : int;
  read_contiguity : float;
      (** average physically-contiguous run length walking files in fbn
          order — the sequential-read quality of the final layout *)
  offered_ops : int;
      (** open loop: arrivals inside the measure window (so
          [ops /. duration] is goodput and [offered_ops - ops] the
          backlog + shed); closed loop: = [ops] *)
  shed_ops : int;  (** QoS-refused arrivals in the window *)
  throttled_ops : int;  (** QoS-delayed admissions in the window *)
  stall_us : float;
      (** client virtual µs parked or paced in NVLog admission
          ({!Wafl_fs.Aggregate.wait_for_log_space}) during the window *)
  b2b_cps : int;  (** back-to-back CPs started in the window *)
  b2b_episodes : int;  (** maximal runs of consecutive back-to-back CPs *)
  nvlog_exhausted : int;
      (** writes refused because NVRAM was exhausted; watermark
          back-pressure must keep this at 0 *)
  tenants : tenant_stat array;  (** open-loop runs only; [[||]] otherwise *)
  races : int;  (** race-detector reports (0 unless [sanitize]; must stay 0) *)
  flash_host_pages : int;  (** NAND pages programmed for host writes in the window *)
  flash_gc_pages : int;  (** pages relocated by the FTL's GC in the window *)
  flash_erases : int;
  flash_gc_stall_us : float;
      (** host service time lost waiting for the GC to free erase blocks *)
  waf : float;
      (** measured write amplification over the window,
          [(host + gc) / host]; 1.0 without a media model or without host
          writes *)
  telemetry : telemetry_result option;
      (** rollup snapshot + health events when [spec.telemetry] is set *)
}

val cores_write_alloc : result -> float
(** Cleaner + infrastructure core usage — the paper's "write allocation
    work". *)

val memoize : bool ref
(** When true, [run] caches results keyed on the spec (minus [obs]) and
    returns the cached result for a repeated spec.  Runs are pure
    functions of their spec, so the returned numbers are identical to a
    re-execution.  Enabled only by the bench harness, where the figure
    suite re-runs several identical configurations; leave off for traced
    or sanitized runs (a cache hit skips the tracer factory). *)

val latency_sink : Wafl_util.Histogram.t option ref
(** When [Some h], every [run] — including memoized cache hits — merges
    its result's end-to-end write-latency histogram into [h].  The bench
    harness installs a fresh histogram per figure so BENCH_paper.json can
    report per-figure write p50/p99. *)

val health_sink : int ref option ref
(** When [Some cell], every [run] — including memoized cache hits — adds
    its health-event count to [cell].  The bench harness installs a fresh
    cell per figure so BENCH_paper.json records health events per
    figure. *)

val run : spec -> result
(** Build, populate (each client's files are written once and flushed by
    a CP so that steady-state writes are overwrites), warm up, measure.
    Deterministic for a given spec. *)

val paper_geometry : unit -> Wafl_storage.Geometry.t
(** 2 RAID groups x (10 data + 2 parity), 262144 blocks per drive —
    5.2 M physical blocks, comparable bitmap-block counts to a real
    mid-range aggregate. *)

val small_geometry : unit -> Wafl_storage.Geometry.t
(** Scaled-down geometry for fast tests. *)
