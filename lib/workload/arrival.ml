(* Open-loop arrival processes (DESIGN.md §4.11).

   A [process] is pure data — no closures — so driver specs embedding one
   stay structurally comparable (the bench memo table keys on specs).
   All rates are client operations per virtual *second*; all generated
   gaps and durations are virtual microseconds, the engine's unit. *)

type process =
  | Poisson of { rate : float }
  | Bursty of {
      base_rate : float;
      burst_rate : float;
      mean_on_us : float;
      mean_off_us : float;
    }
  | Diurnal of { peak_rate : float; floor : float; period_us : float }

let validate p =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  match p with
  | Poisson { rate } -> if rate <= 0.0 then bad "Arrival.Poisson: rate %g must be > 0" rate
  | Bursty { base_rate; burst_rate; mean_on_us; mean_off_us } ->
      if base_rate < 0.0 then bad "Arrival.Bursty: base_rate %g must be >= 0" base_rate;
      if burst_rate <= 0.0 then bad "Arrival.Bursty: burst_rate %g must be > 0" burst_rate;
      if mean_on_us <= 0.0 || mean_off_us <= 0.0 then
        bad "Arrival.Bursty: phase means (%g, %g) must be > 0" mean_on_us mean_off_us
  | Diurnal { peak_rate; floor; period_us } ->
      if peak_rate <= 0.0 then bad "Arrival.Diurnal: peak_rate %g must be > 0" peak_rate;
      if floor < 0.0 || floor > 1.0 then bad "Arrival.Diurnal: floor %g must be in [0,1]" floor;
      if period_us <= 0.0 then bad "Arrival.Diurnal: period %g must be > 0" period_us

let mean_rate = function
  | Poisson { rate } -> rate
  | Bursty { base_rate; burst_rate; mean_on_us; mean_off_us } ->
      ((burst_rate *. mean_on_us) +. (base_rate *. mean_off_us))
      /. (mean_on_us +. mean_off_us)
  | Diurnal { peak_rate; floor; _ } ->
      (* time-average of floor + (1-floor) * sin^2 *)
      peak_rate *. (floor +. ((1.0 -. floor) *. 0.5))

(* Heavy-tailed multi-tenant population: Zipf(alpha) split of [total_rate]
   across [n] independent Poisson tenants.  alpha = 0 is a uniform split;
   larger alpha concentrates load on the first tenants. *)
let population ~n ~total_rate ~alpha =
  if n <= 0 then invalid_arg "Arrival.population: n must be > 0";
  if total_rate <= 0.0 then invalid_arg "Arrival.population: total_rate must be > 0";
  let w = Array.init n (fun i -> float_of_int (i + 1) ** -.alpha) in
  let s = Array.fold_left ( +. ) 0.0 w in
  Array.to_list (Array.map (fun wi -> Poisson { rate = total_rate *. wi /. s }) w)

type state = {
  proc : process;
  rng : Wafl_util.Rng.t;
  mutable on : bool;  (* Bursty only: currently in the burst phase *)
  mutable phase_end : float;  (* Bursty only: virtual time the phase ends *)
}

(* Bursty generators deterministically begin with a burst phase starting
   at the first [next] call's [now] (phase_end starts at 0, so the first
   flip lands on the on-phase). *)
let start proc ~rng =
  validate proc;
  { proc; rng; on = false; phase_end = 0.0 }

let next s ~now =
  match s.proc with
  | Poisson { rate } -> Wafl_util.Rng.exponential s.rng ~mean:(1e6 /. rate)
  | Bursty { base_rate; burst_rate; mean_on_us; mean_off_us } ->
      (* Markov-modulated Poisson process.  Exponential gaps are
         memoryless, so a gap that would cross the phase boundary is
         simply re-drawn from the boundary at the new phase's rate. *)
      let rec go t acc =
        if t >= s.phase_end then begin
          s.on <- not s.on;
          s.phase_end <-
            s.phase_end
            +. Wafl_util.Rng.exponential s.rng
                 ~mean:(if s.on then mean_on_us else mean_off_us);
          go t acc
        end
        else begin
          let rate = if s.on then burst_rate else base_rate in
          if rate <= 0.0 then go s.phase_end (acc +. (s.phase_end -. t))
          else begin
            let g = Wafl_util.Rng.exponential s.rng ~mean:(1e6 /. rate) in
            if t +. g <= s.phase_end then acc +. g
            else go s.phase_end (acc +. (s.phase_end -. t))
          end
        end
      in
      go now 0.0
  | Diurnal { peak_rate; floor; period_us } ->
      (* Thinning against the peak: candidate arrivals at [peak_rate] are
         accepted with the instantaneous intensity fraction
         floor + (1-floor) * sin^2(pi t / period). *)
      let rec go t acc =
        let g = Wafl_util.Rng.exponential s.rng ~mean:(1e6 /. peak_rate) in
        let t = t +. g and acc = acc +. g in
        let phase = 2.0 *. Float.pi *. t /. period_us in
        let intensity = floor +. ((1.0 -. floor) *. 0.5 *. (1.0 -. cos phase)) in
        if Wafl_util.Rng.float s.rng 1.0 < intensity then acc else go t acc
      in
      go now 0.0
