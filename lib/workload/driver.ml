open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry
module Sched = Wafl_waffinity.Scheduler
module Aff = Wafl_waffinity.Affinity

type workload =
  | Seq_write of { file_blocks : int }
  | Rand_write of { file_blocks : int }
  | Skewed_write of { file_blocks : int; hot_fraction : float; hot_rate : float }
  | Mixed_write of { file_blocks : int; random_fraction : float }
  | Oltp of { file_blocks : int; read_fraction : float }
  | Nfs_mix of { files_per_client : int; file_blocks : int }

(* Open-loop mode: tenants (one per arrival process) issue ops at their
   own pace regardless of completions, optionally behind per-volume QoS
   admission.  Pure data so specs stay structurally comparable. *)
type open_loop = {
  arrivals : Arrival.process list;
  qos : Wafl_qos.Qos.config option;
}

(* Always-on fleet telemetry (DESIGN.md §4.15): bounded-memory per-volume
   rollups plus the health watchdog, evaluated lazily from write-side
   calls — attaching it never perturbs a run.  Pure data so specs stay
   structurally comparable (and memoizable). *)
type telemetry = {
  rollup : Wafl_obs.Rollup.config;
  rules : Wafl_obs.Health.rule list;
}

let default_telemetry =
  { rollup = Wafl_obs.Rollup.default_config; rules = Wafl_obs.Health.default_rules }

type telemetry_result = {
  tr_snapshot : Wafl_obs.Rollup.snapshot;
  tr_events : Wafl_obs.Health.event list;
  tr_health_dropped : int;
}

type spec = {
  cores : int;
  workload : workload;
  clients : int;
  think_time : float;
  volumes : int;
  cfg : Wafl_core.Walloc.config;
  cost : Cost.t;
  geometry : Geometry.t;
  nvlog_half : int;
  watermarks : Nvlog.watermarks option;
  open_loop : open_loop option;
  flash : Wafl_flash.Ftl.config option;
  cache_blocks : int;
  warmup : float;
  measure : float;
  seed : int;
  sanitize : bool;
  telemetry : telemetry option;
  obs : Engine.t -> Wafl_obs.Trace.t;
      (* tracer factory, called once with the run's engine; the caller
         captures the returned tracer via a closure to read it after the
         run.  The default attaches nothing. *)
}

let paper_geometry () =
  Geometry.create ~drive_blocks:262144 ~aa_stripes:2048 ~raid_groups:[ (10, 2); (10, 2) ] ()

let small_geometry () =
  Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (4, 1) ] ()

let default_spec =
  {
    cores = 20;
    workload = Seq_write { file_blocks = 16384 };
    clients = 40;
    think_time = 0.0;
    volumes = 2;
    cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 250_000.0 };
    cost = Cost.default;
    geometry = paper_geometry ();
    nvlog_half = 16384;
    watermarks = None;
    open_loop = None;
    flash = None;
    cache_blocks = 65536;
    warmup = 300_000.0;
    measure = 1_000_000.0;
    seed = 42;
    sanitize = false;
    telemetry = None;
    obs = (fun _ -> Wafl_obs.Trace.disabled);
  }

(* Per-tenant accounting for open-loop runs.  Offered/admitted/shed count
   arrivals inside the measure window; completed (and the latency
   histogram) cover those windowed arrivals that finished before the
   measurement ended, so an overloaded tenant's unbounded backlog shows
   up as admitted >> completed. *)
type tenant_stat = {
  t_rate : float;  (* configured mean offered rate, ops per virtual second *)
  t_offered : int;
  t_admitted : int;
  t_throttled : int;  (* admitted after a QoS queueing delay *)
  t_shed : int;
  t_completed : int;
  t_write_latency : Wafl_util.Histogram.t;
}

type result = {
  ops : int;
  duration : float;
  throughput : float;
  throughput_per_client : float;
  latency : Wafl_util.Histogram.t;
  write_latency : Wafl_util.Histogram.t;
  reads : int;
  writes : int;
  metas : int;
  cores_client : float;
  cores_cleaner : float;
  cores_infra : float;
  cores_cp : float;
  cores_io_other : float;
  utilization : float;
  cps_completed : int;
  buffers_cleaned : int;
  vbns_allocated : int;
  vbns_freed : int;
  metafile_blocks_touched : int;
  infra_messages : int;
  cleaner_messages : int;
  get_waits : int;
  avg_active_cleaners : float;
  full_stripes : int;
  partial_stripes : int;
  read_contiguity : float;
  offered_ops : int;  (** open loop: arrivals in the window; closed loop: = ops *)
  shed_ops : int;
  throttled_ops : int;
  stall_us : float;  (** client time parked/paced in NVLog admission *)
  b2b_cps : int;
  b2b_episodes : int;
  nvlog_exhausted : int;  (** writes refused on an exhausted NVLog (must be 0 with watermarks) *)
  tenants : tenant_stat array;  (** per-tenant breakdown; [||] for closed-loop runs *)
  races : int;  (** race-detector reports (0 unless [sanitize]; must stay 0) *)
  (* flash media model, measured over the window; all zero / 1.0 without
     a media model attached *)
  flash_host_pages : int;
  flash_gc_pages : int;
  flash_erases : int;
  flash_gc_stall_us : float;
  waf : float;  (** (host + gc pages) / host pages over the window; 1.0 when idle *)
  telemetry : telemetry_result option;  (** rollup snapshot + health events, when enabled *)
}

let cores_write_alloc r = r.cores_cleaner +. r.cores_infra

(* Average run length of physically consecutive blocks when walking a
   file's logical block numbers in order — the sequential-read layout
   quality that bucket-chunk contiguity buys (SIV-C, objective 2). *)
let measure_contiguity vol file =
  let runs = ref 0 and mapped = ref 0 in
  let prev = ref (-2) in
  for fbn = 0 to File.nfbns file - 1 do
    let vvbn = File.vvbn_of_fbn file fbn in
    if vvbn >= 0 then begin
      let pvbn = Volume.pvbn_of_vvbn vol vvbn in
      if pvbn >= 0 then begin
        incr mapped;
        if pvbn <> !prev + 1 then incr runs;
        prev := pvbn
      end
    end
  done;
  if !runs = 0 then 0.0 else float_of_int !mapped /. float_of_int !runs

(* --- client operation streams ------------------------------------------- *)

type op = Read of int | Write of int | Meta (* block index within the client's space *)

type client_files = { vol : Volume.t; files : File.t array; file_blocks : int }

(* Each client owns [files] in one volume; ops address a flat block space
   across them so one generator serves all workloads. *)
let op_target cf idx =
  let file = cf.files.(idx / cf.file_blocks) in
  let fbn = idx mod cf.file_blocks in
  (file, fbn)

let total_blocks cf = Array.length cf.files * cf.file_blocks

let gen_op workload rng cf cursor =
  match workload with
  | Seq_write _ ->
      let idx = !cursor in
      cursor := (idx + 1) mod total_blocks cf;
      Write idx
  | Rand_write _ -> Write (Wafl_util.Rng.int rng (total_blocks cf))
  | Skewed_write { hot_fraction; hot_rate; _ } ->
      (* The first [hot_fraction] of the blocks takes [hot_rate] of the
         writes — the hot/cold lifetime skew the flash streaming policy
         exploits. *)
      let total = total_blocks cf in
      let hot = max 1 (min (total - 1) (int_of_float (hot_fraction *. float_of_int total))) in
      if Wafl_util.Rng.float rng 1.0 < hot_rate then Write (Wafl_util.Rng.int rng hot)
      else Write (hot + Wafl_util.Rng.int rng (total - hot))
  | Mixed_write { random_fraction; _ } ->
      if Wafl_util.Rng.float rng 1.0 < random_fraction then
        Write (Wafl_util.Rng.int rng (total_blocks cf))
      else begin
        let idx = !cursor in
        cursor := (idx + 1) mod total_blocks cf;
        Write idx
      end
  | Oltp { read_fraction; _ } ->
      let idx = Wafl_util.Rng.int rng (total_blocks cf) in
      if Wafl_util.Rng.float rng 1.0 < read_fraction then Read idx else Write idx
  | Nfs_mix _ ->
      (* 40% reads, 40% small writes, 20% metadata operations. *)
      let p = Wafl_util.Rng.float rng 1.0 in
      let idx = Wafl_util.Rng.int rng (total_blocks cf) in
      if p < 0.4 then Read idx else if p < 0.8 then Write idx else Meta

(* --- the measured run ---------------------------------------------------- *)

type recorder = {
  mutable recording : bool;
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable metas : int;
  hist : Wafl_util.Histogram.t;
  whist : Wafl_util.Histogram.t; (* writes only: end-to-end latency *)
}

type tenant_acc = {
  mutable a_offered : int;
  mutable a_admitted : int;
  mutable a_throttled : int;
  mutable a_shed : int;
  mutable a_completed : int;
  a_whist : Wafl_util.Histogram.t;
}

let stripe_of_fbn fbn = fbn / 1024 mod 16

(* Suite-level memoization.  A run is a pure function of its spec (the
   tracer factory aside), and the figure suite re-executes several
   byte-identical specs: Figure 6's two rows are Figure 4/5 rows, the
   history and crossover endpoints are the white-alligator row, and
   Figure 9's top-load rows are Figure 5's.  When enabled, a repeated
   spec returns the cached result instead of re-simulating — the printed
   numbers are identical because runs are deterministic.  Off by
   default: traced and test runs must re-execute (a cache hit would skip
   the tracer factory's side effects), so only the bench harness turns
   this on. *)
let memoize = ref false

(* Every spec field except [obs] (a closure; bench runs all share the
   default factory, and results do not depend on observation). *)
let memo_key spec =
  ( ( spec.cores,
      spec.workload,
      spec.clients,
      spec.think_time,
      spec.volumes,
      spec.cfg,
      spec.cost ),
    ( spec.geometry,
      spec.nvlog_half,
      spec.watermarks,
      spec.open_loop,
      spec.flash,
      spec.cache_blocks,
      spec.warmup,
      spec.measure,
      spec.seed,
      spec.sanitize,
      spec.telemetry ) )

(* A memo entry is either a finished result or a claim by the run that
   is currently executing the spec: with the harness fanning runs out
   over worker domains (Wafl_util.Pool), two rows can ask for the same
   spec concurrently, and both executing would double-count suite-level
   accumulators (the virtual-time total below).  The second caller
   waits on [memo_cond] for the first to publish.  [memo_lock] also
   guards the other process-wide accumulators at the bottom of this
   file ([latency_sink], the bench virtual-time counter): host-side
   locking only, never held across simulated time. *)
let memo_lock = Mutex.create ()
let memo_cond = Condition.create ()
let memo_tbl : (_, [ `Done of result | `Running ]) Hashtbl.t = Hashtbl.create 32

let run_uncached spec =
  let eng = Engine.create ~cores:spec.cores ~sanitize:spec.sanitize () in
  let user_obs = spec.obs eng in
  (* Telemetry needs a live metrics registry; when no full tracer is
     attached, the metrics-only tracer provides one without recording
     spans or installing engine hooks. *)
  let obs =
    if Wafl_obs.Trace.enabled user_obs || spec.telemetry = None then user_obs
    else Wafl_obs.Trace.metrics_only eng
  in
  let agg =
    Aggregate.create eng ~cost:spec.cost ~geometry:spec.geometry ~nvlog_half:spec.nvlog_half
      ?nvlog_watermarks:spec.watermarks ?flash:spec.flash ~cache_blocks:spec.cache_blocks ~obs
      ()
  in
  let walloc = Wafl_core.Walloc.create ~obs agg spec.cfg in
  let cp = Wafl_core.Walloc.cp walloc in
  let infra = Wafl_core.Walloc.infra walloc in
  let pool = Wafl_core.Walloc.pool walloc in
  (* Fleet telemetry: register cumulative sources over the existing
     counters and metrics; windows seal lazily from the per-op feeds
     below, so no fiber is spawned and the run stays bit-identical. *)
  let telem =
    match spec.telemetry with
    | None -> None
    | Some tcfg ->
        let roll = Wafl_obs.Rollup.create ~config:tcfg.rollup eng in
        let health = Wafl_obs.Health.create ~rules:tcfg.rules roll in
        let m = Wafl_obs.Trace.metrics obs in
        let ctrs = Aggregate.counters agg in
        Wafl_obs.Rollup.add_source roll ~name:"cp.count" (fun () ->
            float_of_int (Wafl_core.Cp.cps_completed cp));
        Wafl_obs.Rollup.add_source roll ~name:"cp.b2b" (fun () ->
            float_of_int (Counters.read ctrs "b2b_cps"));
        Wafl_obs.Rollup.add_source roll ~name:"nvlog.stall_us" (fun () ->
            Aggregate.stall_time agg);
        Wafl_obs.Rollup.add_source roll ~name:"nvlog.hard_dwell_us" (fun () ->
            Aggregate.hard_dwell_time agg);
        Wafl_obs.Rollup.add_source roll ~name:"flash.gc_stall_us" (fun () ->
            List.fold_left
              (fun acc ftl -> acc +. Wafl_flash.Ftl.gc_stall_us ftl)
              0.0 (Aggregate.ftls agg));
        Wafl_obs.Rollup.add_source roll ~name:"rebuild.blocks" (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc r -> acc + Wafl_storage.Raid.rebuild_blocks r)
                 0 (Aggregate.raid_groups agg)));
        Wafl_obs.Rollup.add_source roll ~name:"qos.shed_ops" (fun () ->
            Wafl_obs.Metrics.counter_value m "qos.shed_ops");
        (* Ring drops only exist on a user-attached tracer; the internal
           metrics-only tracer records nothing. *)
        if Wafl_obs.Trace.enabled user_obs then
          Wafl_obs.Rollup.add_source roll ~name:"trace.drops" (fun () ->
              float_of_int (Wafl_obs.Trace.dropped user_obs));
        Wafl_obs.Rollup.add_gauge roll ~name:"rebuild.active" (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc r -> acc + if Wafl_storage.Raid.degraded r then 1 else 0)
                 0 (Aggregate.raid_groups agg)));
        List.iter
          (fun name -> Wafl_obs.Rollup.add_hsource roll ~name (fun () -> Wafl_obs.Metrics.histo m name))
          [
            "op.e2e_us.write";
            "qos.queue_wait_us";
            "cp.duration_us";
            "cp.phase_us.cleaning";
            "cp.phase_us.flush";
            "cp.phase_us.metafiles";
            "cp.phase_us.io-flush";
          ];
        Some (roll, health)
  in
  let files_per_client, file_blocks =
    match spec.workload with
    | Seq_write { file_blocks }
    | Rand_write { file_blocks }
    | Skewed_write { file_blocks; _ }
    | Mixed_write { file_blocks; _ }
    | Oltp { file_blocks; _ } ->
        (1, file_blocks)
    | Nfs_mix { files_per_client; file_blocks } -> (files_per_client, file_blocks)
  in
  let working_set = spec.clients * files_per_client * file_blocks in
  let capacity = Geometry.total_data_blocks spec.geometry in
  if working_set * 3 / 2 >= capacity then
    invalid_arg
      (Printf.sprintf "Driver.run: working set %d too large for aggregate of %d blocks"
         working_set capacity);
  (* --- setup and prefill (not measured) --- *)
  let client_files = Array.make spec.clients None in
  let setup_done = ref false in
  ignore
    (Engine.spawn eng ~label:"setup" (fun () ->
         let vols =
           Array.init spec.volumes (fun _ ->
               let clients_here = (spec.clients + spec.volumes - 1) / spec.volumes in
               let ws = clients_here * files_per_client * file_blocks in
               let vol = Aggregate.create_volume agg ~vvbn_space:((ws * 3 / 2) + 65536) in
               Wafl_core.Walloc.register_volume walloc vol;
               vol)
         in
         for c = 0 to spec.clients - 1 do
           let vol = vols.(c mod spec.volumes) in
           let files =
             Array.init files_per_client (fun _ ->
                 Aggregate.create_file agg ~vol:(Volume.id vol))
           in
           client_files.(c) <- Some { vol; files; file_blocks }
         done;
         (* Prefill every block once so steady-state writes are
            overwrites (as on a system that has been running). *)
         let token = ref 0L in
         Array.iter
           (fun cf ->
             match cf with
             | None -> ()
             | Some cf ->
                 Array.iter
                   (fun f ->
                     for fbn = 0 to cf.file_blocks - 1 do
                       token := Int64.add !token 1L;
                       match
                         Aggregate.write agg ~vol:(Volume.id cf.vol) ~file:(File.id f) ~fbn
                           ~content:!token
                       with
                       | `Ok -> ()
                       | `Log_half_full -> Wafl_core.Cp.run_now cp
                       | `Log_exhausted ->
                           (* run_now drains the log synchronously, so the
                              prefill can never outrun it *)
                           assert false
                     done)
                   cf.files)
           client_files;
         Wafl_core.Cp.run_now cp;
         setup_done := true));
  (* The CP timer fiber never exits, so the engine is never idle; run in
     bounded slices until the prefill completes. *)
  while not !setup_done do
    Engine.run ~until:(Engine.now eng +. 1_000_000.0) eng
  done;
  (* --- clients --- *)
  let sched = Wafl_core.Walloc.scheduler walloc in
  let rec_ =
    {
      recording = false;
      ops = 0;
      reads = 0;
      writes = 0;
      metas = 0;
      hist = Wafl_util.Histogram.create ();
      whist = Wafl_util.Histogram.create ();
    }
  in
  (* End-to-end latency decomposition (DESIGN.md §4.10): per-op-kind
     histograms plus the time writes spend throttled behind CP progress.
     On a disabled tracer these land in a throwaway registry. *)
  let obs_on = Wafl_obs.Trace.enabled obs in
  let m = Wafl_obs.Trace.metrics obs in
  let h_e2e_read = Wafl_obs.Metrics.histogram m "op.e2e_us.read" in
  let h_e2e_write = Wafl_obs.Metrics.histogram m "op.e2e_us.write" in
  let h_e2e_meta = Wafl_obs.Metrics.histogram m "op.e2e_us.meta" in
  let h_throttle = Wafl_obs.Metrics.histogram m "op.throttle_us" in
  let h_qos_wait = Wafl_obs.Metrics.histogram m "qos.queue_wait_us" in
  let c_qos_admitted = Wafl_obs.Metrics.counter m "qos.admitted_ops" in
  let c_qos_throttled = Wafl_obs.Metrics.counter m "qos.throttled_ops" in
  let c_qos_shed = Wafl_obs.Metrics.counter m "qos.shed_ops" in
  let stop = ref false in
  let master_rng = Wafl_util.Rng.create ~seed:spec.seed in
  let active_samples = ref 0 and active_sum = ref 0 in
  (* Waiting for NVLog space is where CP back-pressure surfaces in
     client latency; measure it separately so the decomposition can
     distinguish throttling from service time. *)
  let throttled_wait () =
    if obs_on then begin
      let w0 = Engine.now eng in
      Aggregate.wait_for_log_space agg;
      Wafl_obs.Metrics.observe h_throttle (Engine.now eng -. w0)
    end
    else Aggregate.wait_for_log_space agg
  in
  (* One client operation, executed as one causal root: the context
     follows the op through its Waffinity message (and any downstream
     handoffs), and the op span below closes the request's end-to-end
     interval.  Shared by the closed- and open-loop paths; [started] is
     the op's arrival time (for open loop, before any QoS delay). *)
  let exec_op ~cf ~content ~started op =
    Wafl_obs.Causal.with_root obs (fun () ->
        let kind =
          match op with
          | Read idx ->
              let file, fbn = op_target cf idx in
              Sched.post_wait sched
                ~affinity:(Aff.Stripe (0, Volume.id cf.vol, stripe_of_fbn fbn))
                ~label:"client"
                (fun () ->
                  Engine.consume spec.cost.Cost.client_read;
                  let _, status =
                    Aggregate.read_cached_status agg ~vol:(Volume.id cf.vol)
                      ~file:(File.id file) ~fbn
                  in
                  match status with
                  | `Miss -> Engine.consume spec.cost.Cost.read_miss
                  | `Hit | `Buffered -> ());
              `R
          | Write idx ->
              (* Throttle against CP progress before consuming NVRAM
                 (the message body itself must never park). *)
              throttled_wait ();
              let file, fbn = op_target cf idx in
              let status =
                Sched.post_wait sched
                  ~affinity:(Aff.Stripe (0, Volume.id cf.vol, stripe_of_fbn fbn))
                  ~label:"client"
                  (fun () ->
                    (let c = spec.cost in
                     match spec.workload with
                     | Seq_write _ | Nfs_mix _ -> Engine.consume c.Cost.client_write
                     | Rand_write _ | Skewed_write _ | Oltp _ ->
                         Engine.consume c.Cost.client_write_random
                     | Mixed_write { random_fraction; _ } ->
                         (* Interpolate the client-side cost with the mix. *)
                         Engine.consume
                           ((c.Cost.client_write *. (1.0 -. random_fraction))
                           +. (c.Cost.client_write_random *. random_fraction)));
                    Aggregate.write agg ~vol:(Volume.id cf.vol) ~file:(File.id file) ~fbn
                      ~content)
              in
              (match status with
              | `Ok -> ()
              | `Log_half_full ->
                  Wafl_core.Cp.request cp;
                  (* Watermark admission already paced this write before
                     it consumed NVRAM; the legacy post-hoc wait applies
                     only to the historical throttle. *)
                  if spec.watermarks = None then throttled_wait ()
              | `Log_exhausted ->
                  (* Unreachable under watermarks (the regression suite
                     asserts so); the op is simply not acknowledged. *)
                  ());
              `W
          | Meta ->
              Sched.post_wait sched
                ~affinity:(Aff.Volume_logical (0, Volume.id cf.vol))
                ~label:"client"
                (fun () -> Engine.consume spec.cost.Cost.client_meta);
              `M
        in
        if obs_on then begin
          (* Recorded inside the root so the op span carries its
             request context. *)
          let name, h =
            match kind with
            | `R -> ("read", h_e2e_read)
            | `W -> ("write", h_e2e_write)
            | `M -> ("meta", h_e2e_meta)
          in
          let dur = Engine.now eng -. started in
          Wafl_obs.Metrics.observe h dur;
          Wafl_obs.Trace.complete obs ~cat:"op" ~name ~ts:started ~dur ()
        end;
        (match telem with
        | Some (roll, _) when kind = `W ->
            Wafl_obs.Rollup.observe_write roll ~vol:(Volume.id cf.vol)
              (Engine.now eng -. started)
        | _ -> ());
        kind)
  in
  let telem_count vol kind =
    match telem with Some (roll, _) -> Wafl_obs.Rollup.count roll ~vol kind | None -> ()
  in
  let n_tenants = match spec.open_loop with None -> 0 | Some ol -> List.length ol.arrivals in
  let tstats =
    Array.init n_tenants (fun _ ->
        {
          a_offered = 0;
          a_admitted = 0;
          a_throttled = 0;
          a_shed = 0;
          a_completed = 0;
          a_whist = Wafl_util.Histogram.create ();
        })
  in
  (match spec.open_loop with
  | None ->
      (* Closed loop: each client keeps one op outstanding. *)
      for c = 0 to spec.clients - 1 do
        let cf = match client_files.(c) with Some cf -> cf | None -> assert false in
        let rng = Wafl_util.Rng.split master_rng in
        let cursor = ref (Wafl_util.Rng.int rng (total_blocks cf)) in
        let token = ref (Int64.of_int ((c + 1) * 1_000_000)) in
        ignore
          (Engine.spawn eng ~label:"client" (fun () ->
               while not !stop do
                 let started = Engine.now eng in
                 let op = gen_op spec.workload rng cf cursor in
                 let content =
                   match op with
                   | Write _ ->
                       token := Int64.add !token 1L;
                       !token
                   | Read _ | Meta -> 0L
                 in
                 telem_count (Volume.id cf.vol) `Admitted;
                 let kind = exec_op ~cf ~content ~started op in
                 telem_count (Volume.id cf.vol) `Completed;
                 if rec_.recording then begin
                   (* the recorder is shared by every client fiber; the
                      real system's stats counters are atomics *)
                   Engine.probe_atomic eng ~shared:"driver.recorder";
                   rec_.ops <- rec_.ops + 1;
                   let e2e = Engine.now eng -. started in
                   (match kind with
                   | `R -> rec_.reads <- rec_.reads + 1
                   | `W ->
                       rec_.writes <- rec_.writes + 1;
                       Wafl_util.Histogram.add rec_.whist e2e
                   | `M -> rec_.metas <- rec_.metas + 1);
                   Wafl_util.Histogram.add rec_.hist e2e
                 end;
                 if spec.think_time > 0.0 then
                   Engine.sleep (Wafl_util.Rng.exponential rng ~mean:spec.think_time)
                 else Engine.yield ()
               done))
      done
  | Some ol ->
      (* Open loop: tenant i's arrival fiber issues ops on its own clock
         (each op runs in a freshly spawned fiber), optionally behind
         per-volume QoS admission.  An op arriving inside the measure
         window is recorded at completion — including after the window
         closes — so queueing inflicted by overload is visible rather
         than censored; ops still in flight when the measurement ends
         show up as admitted - completed backlog. *)
      let qos = Option.map (Wafl_qos.Qos.create ~eng) ol.qos in
      List.iteri
        (fun i proc ->
          let cf =
            match client_files.(i mod spec.clients) with Some cf -> cf | None -> assert false
          in
          let rng = Wafl_util.Rng.split master_rng in
          let arr = Arrival.start proc ~rng in
          let cursor = ref (Wafl_util.Rng.int rng (total_blocks cf)) in
          let token = ref (Int64.of_int ((i + 1) * 1_000_000)) in
          let st = tstats.(i) in
          ignore
            (Engine.spawn eng ~label:"arrival" (fun () ->
                 while not !stop do
                   Engine.sleep (Arrival.next arr ~now:(Engine.now eng));
                   if not !stop then begin
                     (* per-tenant accounting is updated from this
                        arrival fiber and every op-completion fiber *)
                     Engine.probe_atomic eng ~shared:"driver.tenants";
                     let windowed = rec_.recording in
                     if windowed then st.a_offered <- st.a_offered + 1;
                     let op = gen_op spec.workload rng cf cursor in
                     let content =
                       match op with
                       | Write _ ->
                           token := Int64.add !token 1L;
                           !token
                       | Read _ | Meta -> 0L
                     in
                     let verdict =
                       match qos with
                       | None -> `Admit
                       | Some q ->
                           Wafl_qos.Qos.admit q ~vol:(Volume.id cf.vol) ~now:(Engine.now eng)
                     in
                     match verdict with
                     | `Shed ->
                         if windowed then st.a_shed <- st.a_shed + 1;
                         telem_count (Volume.id cf.vol) `Shed;
                         Wafl_obs.Metrics.incr c_qos_shed
                     | (`Admit | `Delay _) as verdict ->
                         let delay = match verdict with `Delay d -> d | `Admit -> 0.0 in
                         if windowed then begin
                           st.a_admitted <- st.a_admitted + 1;
                           if delay > 0.0 then st.a_throttled <- st.a_throttled + 1
                         end;
                         telem_count (Volume.id cf.vol) `Admitted;
                         if delay > 0.0 then telem_count (Volume.id cf.vol) `Throttled;
                         Wafl_obs.Metrics.incr c_qos_admitted;
                         if delay > 0.0 then begin
                           Wafl_obs.Metrics.incr c_qos_throttled;
                           Wafl_obs.Metrics.observe h_qos_wait delay
                         end;
                         let started = Engine.now eng in
                         ignore
                           (Engine.spawn eng ~label:"client" (fun () ->
                                if delay > 0.0 then Engine.sleep delay;
                                let kind = exec_op ~cf ~content ~started op in
                                telem_count (Volume.id cf.vol) `Completed;
                                let e2e = Engine.now eng -. started in
                                if windowed then begin
                                  Engine.probe_atomic eng ~shared:"driver.tenants";
                                  Engine.probe_atomic eng ~shared:"driver.recorder";
                                  st.a_completed <- st.a_completed + 1;
                                  rec_.ops <- rec_.ops + 1;
                                  (match kind with
                                  | `R -> rec_.reads <- rec_.reads + 1
                                  | `W ->
                                      rec_.writes <- rec_.writes + 1;
                                      Wafl_util.Histogram.add rec_.whist e2e;
                                      Wafl_util.Histogram.add st.a_whist e2e
                                  | `M -> rec_.metas <- rec_.metas + 1);
                                  Wafl_util.Histogram.add rec_.hist e2e
                                end))
                   end
                 done)))
        ol.arrivals);
  (* Sample the active cleaner-thread count through the measurement. *)
  ignore
    (Engine.spawn eng ~label:"sampler" (fun () ->
         while not !stop do
           Engine.sleep 10_000.0;
           if rec_.recording then begin
             Engine.probe_atomic eng ~shared:"driver.recorder";
             incr active_samples;
             active_sum := !active_sum + Wafl_core.Cleaner_pool.active pool
           end
         done));
  (* --- warmup --- *)
  Engine.run ~until:(Engine.now eng +. spec.warmup) eng;
  Engine.reset_accounting eng;
  rec_.recording <- true;
  let base_cps = Wafl_core.Cp.cps_completed cp in
  let base_buffers = Wafl_core.Cleaner_pool.buffers_cleaned pool in
  let base_alloc = Wafl_core.Infra.vbns_allocated infra in
  let base_freed = Wafl_core.Infra.vbns_freed infra in
  let base_touched = Wafl_core.Infra.metafile_blocks_touched infra in
  let base_imsgs = Wafl_core.Infra.messages_posted infra in
  let base_cmsgs = Wafl_core.Cleaner_pool.messages_processed pool in
  let base_waits = Wafl_core.Cleaner_pool.get_waits pool in
  let stripes_of f = Array.fold_left (fun acc r -> acc + f r) 0 (Aggregate.raid_groups agg) in
  let base_full = stripes_of Wafl_storage.Raid.full_stripes in
  let base_partial = stripes_of Wafl_storage.Raid.partial_stripes in
  let ctrs = Aggregate.counters agg in
  let base_stall = Aggregate.stall_time agg in
  let ftls = Aggregate.ftls agg in
  let flash_sum f = List.fold_left (fun acc ftl -> acc + f ftl) 0 ftls in
  let flash_sumf f = List.fold_left (fun acc ftl -> acc +. f ftl) 0.0 ftls in
  let base_fhost = flash_sum Wafl_flash.Ftl.host_pages in
  let base_fgc = flash_sum Wafl_flash.Ftl.gc_pages in
  let base_ferase = flash_sum Wafl_flash.Ftl.erases in
  let base_fstall = flash_sumf Wafl_flash.Ftl.gc_stall_us in
  let base_b2b = Counters.read ctrs "b2b_cps" in
  let base_b2b_ep = Counters.read ctrs "b2b_episodes" in
  let base_exh = Counters.read ctrs "nvlog_exhausted_writes" in
  (* --- measurement --- *)
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 +. spec.measure) eng;
  rec_.recording <- false;
  let duration = Engine.now eng -. t0 in
  let result =
    {
      ops = rec_.ops;
      duration;
      throughput = float_of_int rec_.ops /. duration *. 1_000_000.0;
      throughput_per_client =
        float_of_int rec_.ops /. duration *. 1_000_000.0 /. float_of_int spec.clients;
      latency = rec_.hist;
      write_latency = rec_.whist;
      reads = rec_.reads;
      writes = rec_.writes;
      metas = rec_.metas;
      cores_client = Engine.cores_used eng "client";
      cores_cleaner = Engine.cores_used eng "cleaner";
      cores_infra = Engine.cores_used eng "infra";
      cores_cp = Engine.cores_used eng "cp";
      cores_io_other =
        Engine.cores_used eng "io" +. Engine.cores_used eng "other"
        +. Engine.cores_used eng "sampler" +. Engine.cores_used eng "tuner";
      utilization = Engine.utilization eng;
      cps_completed = Wafl_core.Cp.cps_completed cp - base_cps;
      buffers_cleaned = Wafl_core.Cleaner_pool.buffers_cleaned pool - base_buffers;
      vbns_allocated = Wafl_core.Infra.vbns_allocated infra - base_alloc;
      vbns_freed = Wafl_core.Infra.vbns_freed infra - base_freed;
      metafile_blocks_touched = Wafl_core.Infra.metafile_blocks_touched infra - base_touched;
      infra_messages = Wafl_core.Infra.messages_posted infra - base_imsgs;
      cleaner_messages = Wafl_core.Cleaner_pool.messages_processed pool - base_cmsgs;
      get_waits = Wafl_core.Cleaner_pool.get_waits pool - base_waits;
      avg_active_cleaners =
        (if !active_samples = 0 then float_of_int (Wafl_core.Cleaner_pool.active pool)
         else float_of_int !active_sum /. float_of_int !active_samples);
      full_stripes = stripes_of Wafl_storage.Raid.full_stripes - base_full;
      partial_stripes = stripes_of Wafl_storage.Raid.partial_stripes - base_partial;
      read_contiguity =
        (let total = ref 0.0 and n = ref 0 in
         Array.iter
           (fun cf ->
             match cf with
             | None -> ()
             | Some cf ->
                 Array.iter
                   (fun f ->
                     total := !total +. measure_contiguity cf.vol f;
                     incr n)
                   cf.files)
           client_files;
         if !n = 0 then 0.0 else !total /. float_of_int !n);
      offered_ops =
        (if n_tenants = 0 then rec_.ops
         else Array.fold_left (fun a st -> a + st.a_offered) 0 tstats);
      shed_ops = Array.fold_left (fun a st -> a + st.a_shed) 0 tstats;
      throttled_ops = Array.fold_left (fun a st -> a + st.a_throttled) 0 tstats;
      stall_us = Aggregate.stall_time agg -. base_stall;
      b2b_cps = Counters.read ctrs "b2b_cps" - base_b2b;
      b2b_episodes = Counters.read ctrs "b2b_episodes" - base_b2b_ep;
      nvlog_exhausted = Counters.read ctrs "nvlog_exhausted_writes" - base_exh;
      tenants =
        (match spec.open_loop with
        | None -> [||]
        | Some ol ->
            let procs = Array.of_list ol.arrivals in
            Array.mapi
              (fun i st ->
                {
                  t_rate = Arrival.mean_rate procs.(i);
                  t_offered = st.a_offered;
                  t_admitted = st.a_admitted;
                  t_throttled = st.a_throttled;
                  t_shed = st.a_shed;
                  t_completed = st.a_completed;
                  t_write_latency = st.a_whist;
                })
              tstats);
      races = Engine.race_report_count eng;
      flash_host_pages = flash_sum Wafl_flash.Ftl.host_pages - base_fhost;
      flash_gc_pages = flash_sum Wafl_flash.Ftl.gc_pages - base_fgc;
      flash_erases = flash_sum Wafl_flash.Ftl.erases - base_ferase;
      flash_gc_stall_us = flash_sumf Wafl_flash.Ftl.gc_stall_us -. base_fstall;
      waf =
        (let host = flash_sum Wafl_flash.Ftl.host_pages - base_fhost in
         let gc = flash_sum Wafl_flash.Ftl.gc_pages - base_fgc in
         if host = 0 then 1.0 else float_of_int (host + gc) /. float_of_int host);
      telemetry =
        Option.map
          (fun (roll, health) ->
            {
              tr_snapshot = Wafl_obs.Rollup.snapshot roll;
              tr_events = Wafl_obs.Health.events health;
              tr_health_dropped = Wafl_obs.Health.dropped health;
            })
          telem;
    }
  in
  Aggregate.refresh_flash_counters agg;
  (match Sys.getenv_opt "WAFL_FLASH_DEBUG" with
  | Some _ when ftls <> [] ->
      List.iter
        (fun f ->
          Printf.eprintf
            "[flash dbg] blocks %d free %d valid %d host %d gc %d erases %d trims %d streams [%s]\n%!"
            (Wafl_flash.Ftl.block_count f) (Wafl_flash.Ftl.free_blocks f)
            (Wafl_flash.Ftl.valid_pages f) (Wafl_flash.Ftl.host_pages f)
            (Wafl_flash.Ftl.gc_pages f) (Wafl_flash.Ftl.erases f) (Wafl_flash.Ftl.trims f)
            (String.concat ";"
               (Array.to_list (Array.map string_of_int (Wafl_flash.Ftl.stream_appended f)))))
        ftls
  | _ -> ());
  stop := true;
  (* Per-run virtual time accumulates in the process-wide registry so the
     bench harness can report simulated seconds next to wall seconds.
     Registry lookup and add run under the host lock: concurrent runs on
     worker domains share this registry. *)
  Mutex.lock memo_lock;
  Wafl_obs.Metrics.addf
    (Wafl_obs.Metrics.counter Wafl_obs.Metrics.default "virtual_time_us")
    (Engine.now eng);
  Mutex.unlock memo_lock;
  result

(* When set, every run — including memoized cache hits, whose results
   carry the histogram — merges its end-to-end write-latency histogram
   into the sink.  The bench harness points this at a fresh histogram
   per figure to report write p50/p99 next to wall time. *)
let latency_sink : Wafl_util.Histogram.t option ref = ref None

(* Like [latency_sink], for health: every run (cache hits included) adds
   its health-event count to the cell.  The bench harness installs a
   fresh cell per figure so BENCH_paper.json records events per figure. *)
let health_sink : int ref option ref = ref None

(* Memoized run with in-flight dedup: exactly one caller executes each
   unique spec; concurrent callers of the same spec wait for its result
   rather than re-simulating (which would be correct but would
   double-count the virtual-time total above).  If the executing run
   raises, the claim is withdrawn so a waiter can retry. *)
let run_memoized spec =
  let key = memo_key spec in
  Mutex.lock memo_lock;
  let rec claim () =
    match Hashtbl.find_opt memo_tbl key with
    | Some (`Done r) -> `Hit r
    | Some `Running ->
        Condition.wait memo_cond memo_lock;
        claim ()
    | None ->
        Hashtbl.add memo_tbl key `Running;
        `Mine
  in
  let claimed = claim () in
  Mutex.unlock memo_lock;
  match claimed with
  | `Hit r -> r
  | `Mine ->
      let publish outcome =
        Mutex.lock memo_lock;
        (match outcome with
        | Some r -> Hashtbl.replace memo_tbl key (`Done r)
        | None -> Hashtbl.remove memo_tbl key);
        Condition.broadcast memo_cond;
        Mutex.unlock memo_lock
      in
      (match run_uncached spec with
      | r ->
          publish (Some r);
          r
      | exception e ->
          publish None;
          raise e)

let run spec =
  let r = if !memoize then run_memoized spec else run_uncached spec in
  Mutex.lock memo_lock;
  (match !latency_sink with
  | Some dst -> Wafl_util.Histogram.merge_into ~dst r.write_latency
  | None -> ());
  (match (!health_sink, r.telemetry) with
  | Some cell, Some tr -> cell := !cell + List.length tr.tr_events
  | _ -> ());
  Mutex.unlock memo_lock;
  r
