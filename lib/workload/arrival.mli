(** Open-loop arrival processes (DESIGN.md §4.11).

    The closed-loop clients of {!Driver} model Fibre-Channel hosts that
    wait for each reply; overload experiments instead need {e open-loop}
    tenants whose offered load does not slacken when the server slows
    down.  A [process] describes one tenant's arrival stream as pure data
    (rates in client operations per virtual {e second}); {!start} turns it
    into a deterministic generator yielding inter-arrival gaps in virtual
    microseconds.

    Processes are plain structural data so driver specs embedding them
    remain comparable — the bench memo table keys on whole specs. *)

type process =
  | Poisson of { rate : float }  (** memoryless arrivals at [rate] ops/s *)
  | Bursty of {
      base_rate : float;  (** ops/s in the off (quiet) phase; may be 0 *)
      burst_rate : float;  (** ops/s in the on (burst) phase *)
      mean_on_us : float;  (** mean burst duration, virtual µs *)
      mean_off_us : float;  (** mean quiet duration, virtual µs *)
    }
      (** two-phase Markov-modulated Poisson process with exponential
          phase durations; generators begin in a burst phase *)
  | Diurnal of { peak_rate : float; floor : float; period_us : float }
      (** sinusoidal ramp: intensity sweeps between [floor * peak_rate]
          and [peak_rate] with period [period_us] (thinning construction,
          starting at the trough) *)

val validate : process -> unit
(** Raises [Invalid_argument] on nonsensical parameters (non-positive
    rates, [floor] outside [0,1], ...). *)

val mean_rate : process -> float
(** Time-average offered rate in ops per virtual second — used by the
    harness to size experiments against simulated NVLog drain rates. *)

val population : n:int -> total_rate:float -> alpha:float -> process list
(** Heavy-tailed multi-tenant population: [total_rate] split across [n]
    independent Poisson tenants with Zipf([alpha]) weights (tenant 1
    largest).  [alpha = 0.] is a uniform split. *)

type state

val start : process -> rng:Wafl_util.Rng.t -> state
(** Validates and binds the process to a random stream.  Same process and
    same-seeded rng give a byte-identical gap sequence. *)

val next : state -> now:float -> float
(** The gap, in virtual µs, from [now] to the next arrival.  [now] must
    not decrease across calls on one state. *)
