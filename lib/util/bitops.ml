let popcount (x : int64) =
  (* SWAR popcount, 64-bit. *)
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* de Bruijn sequence for branch-free 64-bit ctz: isolating the lowest
   set bit and multiplying by B puts a unique 6-bit pattern in the top
   bits, which indexes the position table. *)
let ctz_debruijn = 0x022FDD63CC95386DL

let ctz_table =
  (* [table.(top6 (bit i * B)) = i] — built from the sequence itself, so
     the table cannot disagree with the lookup. *)
  let t = Array.make 64 0 in
  for i = 0 to 63 do
    let idx = Int64.to_int (Int64.shift_right_logical (Int64.mul (Int64.shift_left 1L i) ctz_debruijn) 58) in
    t.(idx) <- i
  done;
  t

let ctz (x : int64) =
  (* Count trailing zeros of a non-zero word, O(1): de Bruijn multiply on
     the isolated lowest bit. *)
  let lowest = Int64.logand x (Int64.neg x) in
  Array.unsafe_get ctz_table (Int64.to_int (Int64.shift_right_logical (Int64.mul lowest ctz_debruijn) 58))

let find_first_zero w =
  let inv = Int64.lognot w in
  if inv = 0L then -1 else ctz inv

let find_next_zero w i =
  if i > 63 then -1
  else
    let mask = if i = 0 then Int64.minus_one else Int64.shift_left Int64.minus_one i in
    let inv = Int64.logand (Int64.lognot w) mask in
    if inv = 0L then -1 else ctz inv

let get w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L
let set w i = Int64.logor w (Int64.shift_left 1L i)
let clear w i = Int64.logand w (Int64.lognot (Int64.shift_left 1L i))
