(** Worker-domain pool for independent simulation runs.

    The simulator is deterministic per run (a run is a pure function of
    its spec/seed), and the harnesses execute many independent runs: the
    bench suite's figure rows, the crash harness's seeds, experiment
    sweep points, and the partitioned engine's per-window advances.
    [run]/[map] execute those tasks concurrently on OCaml 5 domains and
    merge the results in {e input} order regardless of completion order,
    so a parallel sweep is byte-identical to a serial one.

    Tasks must be independent: they may not share mutable state except
    through [Atomic]/[Mutex]-protected or domain-local structures (the
    engine keeps its scheduler context in [Domain.DLS]; the analyzer's
    domain-safety pass audits the rest).  Tasks must not print — output
    belongs to the caller, after the deterministic merge.

    Nesting: a task must not call back into [run]/[map] with
    [domains > 1]; the harness fans out at exactly one level (rows or
    seeds or windows, never both). *)

val default_domains : unit -> int
(** Worker-domain count from the environment: [WAFL_DOMAINS] if set to a
    positive integer, else {!Domain.recommended_domain_count} (1 on a
    single-core host, so defaults never oversubscribe). *)

val run : domains:int -> (unit -> 'a) list -> 'a list
(** [run ~domains tasks] executes every task and returns their results
    in input order.  [domains <= 1] (or a single task) executes inline
    on the calling domain — bit-for-bit the serial path.  Otherwise
    [min domains (length tasks)] domains (the caller counts as one) pull
    tasks from a shared index.  If any task raises, the first exception
    in {e input} order is re-raised after all domains join. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs = run ~domains (List.map (fun x () -> f x) xs)]. *)

(** {1 Persistent worker teams}

    [run] spawns fresh domains per call, which is right for a handful of
    long tasks (figure rows, crash seeds) but wrong for the partitioned
    engine, which fans out thousands of short virtual-time windows per
    run: domain spawn/join would dominate.  A [team] keeps its worker
    domains alive across calls and synchronizes each batch with a
    generation barrier. *)

type team

val team : domains:int -> team
(** Spawn a persistent team of [domains - 1] worker domains (the caller
    participates in every batch, so total concurrency is [domains]).
    [domains <= 1] spawns nothing and [team_run] executes inline. *)

val team_domains : team -> int

val team_run : team -> (unit -> unit) list -> unit
(** Execute one batch with {!run} semantics: tasks are claimed from a
    shared index, the call returns only after every task finished (a
    barrier), and the first exception in input order is re-raised.
    Must only be called from the domain that created the team, one
    batch at a time. *)

val team_stop : team -> unit
(** Shut the workers down and join them.  Idempotent; the team must not
    be used afterwards. *)
