type t = { default : int; mutable data : int array; mutable len : int }

let create ?(initial_capacity = 16) ~default () =
  if initial_capacity <= 0 then invalid_arg "Intvec.create: bad capacity";
  { default; data = Array.make initial_capacity default; len = 0 }

let default t = t.default
let length t = t.len

let get t i =
  if i < 0 then invalid_arg "Intvec.get: negative index";
  if i >= t.len then t.default else t.data.(i)

let set t i v =
  if i < 0 then invalid_arg "Intvec.set: negative index";
  if i >= Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while i >= !cap do
      cap := !cap * 2
    done;
    let bigger = Array.make !cap t.default in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(i) <- v;
  if i >= t.len then t.len <- i + 1

(* [extract t ~pos ~len] = [Array.init len (fun i -> get t (pos + i))]
   as one allocation + blit: entries past [t.len] are the default, and
   the backing array's tail beyond [t.len] already holds the default. *)
let extract t ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Intvec.extract";
  let a = Array.make len t.default in
  let avail = t.len - pos in
  if avail > 0 then Array.blit t.data pos a 0 (min len avail);
  a

let iteri_set t f =
  for i = 0 to t.len - 1 do
    if t.data.(i) <> t.default then f i t.data.(i)
  done

let copy t = { default = t.default; data = Array.copy t.data; len = t.len }
