(** Growable [int] array with a default element, used for block maps and
    container maps (fbn -> VBN style mappings) that grow as files are
    extended.  Reads beyond the current length return the default rather
    than raising, which matches "hole" semantics in sparse files. *)

type t

val create : ?initial_capacity:int -> default:int -> unit -> t
val default : t -> int
val length : t -> int
(** One past the highest index ever written. *)

val get : t -> int -> int
val set : t -> int -> int -> unit
(** Grows the vector as needed; intermediate slots read as the default. *)

val extract : t -> pos:int -> len:int -> int array
(** [extract t ~pos ~len] equals [Array.init len (fun i -> get t (pos + i))]
    — a block copy of the logical range, defaults where unset. *)

val iteri_set : t -> (int -> int -> unit) -> unit
(** Iterate over indices whose value differs from the default. *)

val copy : t -> t
