type t = {
  lo : float;
  log_lo : float;
  scale : float; (* buckets per natural-log unit *)
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create ?(lo = 1.0) ?(hi = 1e8) ?(buckets_per_decade = 20) () =
  assert (lo > 0.0 && hi > lo && buckets_per_decade > 0);
  let decades = log10 (hi /. lo) in
  let nbuckets = int_of_float (ceil (decades *. float_of_int buckets_per_decade)) + 1 in
  {
    lo;
    log_lo = log lo;
    scale = float_of_int buckets_per_decade /. log 10.0;
    counts = Array.make nbuckets 0;
    n = 0;
    sum = 0.0;
    max_seen = 0.0;
  }

let lo t = t.lo
let nbuckets t = Array.length t.counts
let counts t = Array.copy t.counts

let buckets_per_decade t = int_of_float (Float.round (t.scale *. log 10.0))

(* Record header + 7 fields, array header + one word per bucket. *)
let approx_bytes t = 8 * (8 + 1 + Array.length t.counts)

let of_counts ~lo ~buckets_per_decade ~counts ~sum ~max_seen =
  if lo <= 0.0 || buckets_per_decade <= 0 || Array.length counts = 0 then
    invalid_arg "Histogram.of_counts";
  {
    lo;
    log_lo = log lo;
    scale = float_of_int buckets_per_decade /. log 10.0;
    counts = Array.copy counts;
    n = Array.fold_left ( + ) 0 counts;
    sum;
    max_seen;
  }

let copy t = { t with counts = Array.copy t.counts }

let bucket_of t v =
  if v <= t.lo then 0
  else
    let b = int_of_float ((log v -. t.log_lo) *. t.scale) in
    if b >= Array.length t.counts then Array.length t.counts - 1 else b

(* Geometric center of bucket [b]; used for interpolation and the mean of
   clamped samples. *)
let value_of t b = exp (t.log_lo +. ((float_of_int b +. 0.5) /. t.scale))

let add t v =
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let sum t = t.sum
let max_seen t = t.max_seen

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int t.n in
    let rec scan b acc =
      if b >= Array.length t.counts then t.max_seen
      else
        let acc' = acc + t.counts.(b) in
        if float_of_int acc' >= target then Float.min (value_of t b) t.max_seen
        else scan (b + 1) acc'
    in
    scan 0 0
  end

let percentile t p = quantile t (p /. 100.0)

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0.0

let merge_into ~dst src =
  if Array.length dst.counts <> Array.length src.counts then
    invalid_arg "Histogram.merge_into: shape mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let merge a b =
  let m = copy a in
  merge_into ~dst:m b;
  m

let delta ~baseline cur =
  if Array.length baseline.counts <> Array.length cur.counts then
    invalid_arg "Histogram.delta: shape mismatch";
  let counts =
    Array.init (Array.length cur.counts) (fun i ->
        let d = cur.counts.(i) - baseline.counts.(i) in
        if d < 0 then invalid_arg "Histogram.delta: baseline is not a prefix of cur";
        d)
  in
  (* max_seen cannot be windowed from cumulative state; the cumulative
     max is kept as an upper bound (quantile only uses it as a cap). *)
  {
    cur with
    counts;
    n = cur.n - baseline.n;
    sum = cur.sum -. baseline.sum;
    max_seen = cur.max_seen;
  }

let pp_summary ppf t =
  Format.fprintf ppf "p50=%.1f p95=%.1f p99=%.1f max=%.1f (n=%d)" (percentile t 50.0)
    (percentile t 95.0) (percentile t 99.0) t.max_seen t.n
