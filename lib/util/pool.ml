(* Worker-domain pool.  See the interface for the contract; the
   implementation is a shared atomic task index: each domain claims the
   next unclaimed task, writes its result into a slot keyed by the
   task's input position, and the caller reads the slots back in input
   order after every domain joins.  Completion order is irrelevant, so
   the merge is deterministic by construction. *)

let default_domains () =
  match Sys.getenv_opt "WAFL_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> Domain.recommended_domain_count ()

(* A task either produced a value or raised; [Pending] only survives a
   task that never ran, which cannot happen once every domain joins. *)
type 'a slot = Pending | Value of 'a | Raised of exn

let run ~domains tasks =
  match tasks with
  | [] -> []
  | [ t ] -> [ t () ]
  | _ when domains <= 1 -> List.map (fun t -> t ()) tasks
  | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let slots = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            slots.(i) <- (match tasks.(i) () with v -> Value v | exception e -> Raised e)
        done
      in
      (* The calling domain is one of the workers, so [domains] bounds the
         total concurrency, not the extra threads. *)
      let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned;
      (* First failure in input order wins, whatever order tasks ran in. *)
      Array.iter (function Raised e -> raise e | _ -> ()) slots;
      Array.to_list
        (Array.map (function Value v -> v | Pending | Raised _ -> assert false) slots)

let map ~domains f xs = run ~domains (List.map (fun x () -> f x) xs)

(* --- persistent teams ---------------------------------------------------

   A generation barrier: the coordinator publishes a batch under the
   mutex and bumps [gen]; workers wake on the condition variable, claim
   tasks from the shared atomic index, and report completion back
   through [finished].  Publishing before the broadcast and counting
   completions under the same mutex gives the happens-before edges both
   directions need, so the task array and error slots are never read
   concurrently with a write. *)

type team_state = {
  mu : Mutex.t;
  cv : Condition.t; (* both directions: new generation, and batch done *)
  mutable gen : int;
  mutable tasks : (unit -> unit) array;
  next_idx : int Atomic.t;
  mutable errors : exn option array;
  mutable finished : int; (* workers done with the current generation *)
  mutable shutdown : bool;
}

type team = {
  st : team_state;
  workers : unit Domain.t list;
  n : int; (* total concurrency: workers + the coordinator *)
  mutable stopped : bool;
}

let team_drain st =
  let tasks = st.tasks and errors = st.errors in
  let ntasks = Array.length tasks in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add st.next_idx 1 in
    if i >= ntasks then continue := false
    else match tasks.(i) () with () -> () | exception e -> errors.(i) <- Some e
  done

let team ~domains =
  let n = max 1 domains in
  let st =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      gen = 0;
      tasks = [||];
      next_idx = Atomic.make 0;
      errors = [||];
      finished = 0;
      shutdown = false;
    }
  in
  let worker () =
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock st.mu;
      while st.gen = !seen && not st.shutdown do
        Condition.wait st.cv st.mu
      done;
      if st.shutdown then continue := false
      else begin
        seen := st.gen;
        Mutex.unlock st.mu;
        team_drain st;
        Mutex.lock st.mu;
        st.finished <- st.finished + 1;
        Condition.broadcast st.cv
      end;
      Mutex.unlock st.mu
    done
  in
  { st; workers = List.init (n - 1) (fun _ -> Domain.spawn worker); n; stopped = false }

let team_domains tm = tm.n

let team_run tm tasks =
  match tasks with
  | [] -> ()
  | _ when tm.n = 1 -> List.iter (fun t -> t ()) tasks
  | _ ->
      let st = tm.st in
      let tasks = Array.of_list tasks in
      let errors = Array.make (Array.length tasks) None in
      Mutex.lock st.mu;
      st.tasks <- tasks;
      st.errors <- errors;
      Atomic.set st.next_idx 0;
      st.finished <- 0;
      st.gen <- st.gen + 1;
      Condition.broadcast st.cv;
      Mutex.unlock st.mu;
      team_drain st;
      Mutex.lock st.mu;
      while st.finished < tm.n - 1 do
        Condition.wait st.cv st.mu
      done;
      st.tasks <- [||];
      st.errors <- [||];
      Mutex.unlock st.mu;
      Array.iter (function Some e -> raise e | None -> ()) errors

let team_stop tm =
  if not tm.stopped then begin
    tm.stopped <- true;
    let st = tm.st in
    Mutex.lock st.mu;
    st.shutdown <- true;
    Condition.broadcast st.cv;
    Mutex.unlock st.mu;
    List.iter Domain.join tm.workers
  end
