(** Bit-manipulation helpers for the 64-bit words backing allocation
    bitmaps. Bit [i] of a word corresponds to block [base + i]; a set bit
    means "in use", a clear bit means "free" (matching WAFL's active map
    convention). *)

val popcount : int64 -> int
(** Number of set bits. *)

val ctz : int64 -> int
(** Count trailing zeros of a non-zero word (branch-free de Bruijn
    lookup); undefined on 0. *)

val find_first_zero : int64 -> int
(** Index (0-63) of the lowest clear bit, or -1 if the word is all ones. *)

val find_next_zero : int64 -> int -> int
(** [find_next_zero w i] is the lowest clear bit index [>= i], or -1. *)

val get : int64 -> int -> bool
val set : int64 -> int -> int64
val clear : int64 -> int -> int64
