(** Log-bucketed histogram for latency distributions.

    Values are assigned to geometrically spaced buckets, which gives
    accurate percentiles over many orders of magnitude (microseconds to
    seconds) with a small fixed memory footprint.  Quantiles are
    interpolated within a bucket. *)

type t

val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults cover [1e0, 1e8] (virtual microseconds) with 20 buckets per
    decade, i.e. ~2.8% relative resolution. Out-of-range values clamp to
    the first / last bucket. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]. Returns 0.0 when empty. *)

val percentile : t -> float -> float
(** [percentile t 99.0] = [quantile t 0.99]. *)

val clear : t -> unit
val merge_into : dst:t -> t -> unit
(** Adds all of the source's buckets into [dst]; the histograms must have
    been created with identical parameters. *)

val merge : t -> t -> t
(** Fresh histogram holding the bucket-wise sum of both arguments
    (neither is mutated).  Bucket-exact: [merge a b] has the same buckets
    as a single histogram fed both sample streams. *)

val copy : t -> t

val delta : baseline:t -> t -> t
(** [delta ~baseline cur] is the fresh histogram of samples recorded in
    [cur] since the [baseline] snapshot was taken (bucket-wise
    subtraction; both must share [cur]'s parameters and [baseline] must
    be an earlier snapshot of the same stream).  [max_seen] carries the
    cumulative maximum — an upper bound for the window. *)

(** {1 Structure accessors (for bounded-memory rollups and JSON export)} *)

val lo : t -> float
val buckets_per_decade : t -> int
val nbuckets : t -> int
val sum : t -> float
val max_seen : t -> float

val counts : t -> int array
(** Copy of the raw bucket counts. *)

val approx_bytes : t -> int
(** Approximate heap footprint in bytes (record + bucket array). *)

val of_counts :
  lo:float -> buckets_per_decade:int -> counts:int array -> sum:float -> max_seen:float -> t
(** Rebuild a histogram from exported raw state ([n] is the sum of
    [counts]; the array is copied). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line "p50/p95/p99/max" rendering. *)
